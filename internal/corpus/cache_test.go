package corpus_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/corpus"
)

func key(i int) corpus.Key {
	return corpus.Key{FP: corpus.Fingerprint{Count: i, Points: i, Hash: uint64(i)}, Measure: "m", Band: "b"}
}

func TestCacheLRUEviction(t *testing.T) {
	c := corpus.NewCache(3)
	for i := 1; i <= 4; i++ {
		c.Put(key(i), i)
	}
	if _, ok := c.Get(key(1)); ok {
		t.Fatalf("oldest entry survived eviction")
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != key(4) || keys[2] != key(2) {
		t.Fatalf("MRU order wrong: %v", keys)
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheGetPromotes(t *testing.T) {
	c := corpus.NewCache(2)
	c.Put(key(1), 1)
	c.Put(key(2), 2)
	if _, ok := c.Get(key(1)); !ok {
		t.Fatalf("entry 1 missing")
	}
	c.Put(key(3), 3) // must evict 2, not the just-touched 1
	if _, ok := c.Get(key(2)); ok {
		t.Fatalf("recently-used entry evicted instead of LRU")
	}
	if v, ok := c.Get(key(1)); !ok || v.(int) != 1 {
		t.Fatalf("promoted entry lost: %v %v", v, ok)
	}
}

func TestCachePutRefreshes(t *testing.T) {
	c := corpus.NewCache(2)
	c.Put(key(1), 1)
	c.Put(key(2), 2)
	c.Put(key(1), 10) // refresh, no growth
	if c.Len() != 2 {
		t.Fatalf("len = %d after refresh, want 2", c.Len())
	}
	if v, _ := c.Get(key(1)); v.(int) != 10 {
		t.Fatalf("refresh kept stale value %v", v)
	}
	c.Put(key(3), 3) // 1 was refreshed to MRU; 2 must go
	if _, ok := c.Get(key(2)); ok {
		t.Fatalf("refresh did not promote entry 1")
	}
}

// Same-shape corpora fingerprint differently, so their cache keys never
// alias even with identical measure and band strings.
func TestCacheKeysDoNotAliasAcrossContent(t *testing.T) {
	a := corpus.FingerprintOf(testSeries(20, 8, 32))
	b := corpus.FingerprintOf(testSeries(21, 8, 32))
	c := corpus.NewCache(4)
	c.Put(corpus.Key{FP: a, Measure: "dtw", Band: "tuned"}, "A")
	c.Put(corpus.Key{FP: b, Measure: "dtw", Band: "tuned"}, "B")
	if c.Len() != 2 {
		t.Fatalf("same-shape corpora collapsed to one entry")
	}
	if v, _ := c.Get(corpus.Key{FP: a, Measure: "dtw", Band: "tuned"}); v.(string) != "A" {
		t.Fatalf("wrong value for corpus A: %v", v)
	}
}

func TestGetOrBuildBuildsOnce(t *testing.T) {
	c := corpus.NewCache(4)
	var builds atomic.Int64
	var wg sync.WaitGroup
	const workers = 16
	out := make([]any, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, err := c.GetOrBuildCtx(context.Background(), key(1), func(context.Context) (any, error) {
				builds.Add(1)
				return "built", nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
			}
			out[w] = v
		}(w)
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("builder ran %d times, want 1", builds.Load())
	}
	for w, v := range out {
		if v.(string) != "built" {
			t.Fatalf("worker %d got %v", w, v)
		}
	}
	if st := c.Stats(); st.Builds != 1 {
		t.Fatalf("stats.Builds = %d, want 1", st.Builds)
	}
}

func TestGetOrBuildErrorNotCached(t *testing.T) {
	c := corpus.NewCache(4)
	boom := errors.New("boom")
	calls := 0
	build := func(context.Context) (any, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return "ok", nil
	}
	if _, err := c.GetOrBuildCtx(context.Background(), key(1), build); !errors.Is(err, boom) {
		t.Fatalf("first call: %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("error was cached")
	}
	v, err := c.GetOrBuildCtx(context.Background(), key(1), build)
	if err != nil || v.(string) != "ok" {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
}

func TestGetOrBuildConcurrentDistinctKeys(t *testing.T) {
	c := corpus.NewCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				k := key(i % 8)
				v, err := c.GetOrBuildCtx(context.Background(), k, func(context.Context) (any, error) {
					return fmt.Sprintf("v%d", k.FP.Count), nil
				})
				if err != nil || v.(string) != fmt.Sprintf("v%d", k.FP.Count) {
					t.Errorf("worker %d: key %d got %v, %v", w, k.FP.Count, v, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := c.Stats(); st.Builds != 8 {
		t.Fatalf("builds = %d, want 8", st.Builds)
	}
}

func TestGetOrBuildWaiterCancelled(t *testing.T) {
	c := corpus.NewCache(4)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.GetOrBuildCtx(context.Background(), key(1), func(context.Context) (any, error) {
			close(started)
			<-release
			return "slow", nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.GetOrBuildCtx(ctx, key(1), func(context.Context) (any, error) {
		t.Error("waiter must not run the builder")
		return nil, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter returned %v", err)
	}
	close(release)
}
