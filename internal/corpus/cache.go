package corpus

import (
	"container/list"
	"context"
	"sync"
)

// Key identifies one cached value: the corpus content fingerprint, the
// measure (or grid) identity, and a free-form parameter band describing
// what was computed (e.g. "snapshot", "tuned/stride=4"). Two corpora with
// different content hash to different fingerprints, so same-shape datasets
// never alias.
type Key struct {
	FP      Fingerprint
	Measure string
	Band    string
}

// CacheStats counts cache activity since construction.
type CacheStats struct {
	Hits      int64 // Get / GetOrBuildCtx served from the cache
	Misses    int64 // lookups that found nothing
	Evictions int64 // entries dropped by the size bound
	Builds    int64 // successful GetOrBuildCtx builder runs
}

// Cache is a size-bounded LRU for snapshots and derived results (tuned
// parameters, index structures) keyed by corpus content. It is safe for
// concurrent use; GetOrBuildCtx additionally deduplicates concurrent
// builds of the same key so a thundering herd prepares a corpus once.
type Cache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
	inflight map[Key]*inflightBuild
	stats    CacheStats
}

// cacheEntry is one resident value; list elements hold *cacheEntry.
type cacheEntry struct {
	key Key
	val any
}

// inflightBuild tracks one in-progress GetOrBuildCtx build; waiters block
// on done and then read val/err.
type inflightBuild struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache returns a cache holding at most capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    map[Key]*list.Element{},
		inflight: map[Key]*inflightBuild{},
	}
}

// Get returns the cached value for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*cacheEntry).val, true
	}
	c.stats.Misses++
	return nil, false
}

// Put inserts (or refreshes) k, evicting the least recently used entry
// when the bound is exceeded.
func (c *Cache) Put(k Key, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(k, v)
}

// put is Put with c.mu held.
func (c *Cache) put(k Key, v any) {
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[k] = c.ll.PushFront(&cacheEntry{key: k, val: v})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Keys returns the resident keys from most to least recently used.
func (c *Cache) Keys() []Key {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Key, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}

// Stats returns a copy of the activity counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// GetOrBuildCtx returns the cached value for k, or runs build to produce
// it. Concurrent calls for the same key share one build: losers block
// until the winner finishes (or ctx is cancelled) and receive its value.
// Build errors propagate to every waiter and are NOT cached — the next
// call retries.
func (c *Cache) GetOrBuildCtx(ctx context.Context, k Key, build func(ctx context.Context) (any, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, nil
	}
	if fl, ok := c.inflight[k]; ok {
		c.mu.Unlock()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fl.err != nil {
			return nil, fl.err
		}
		// The winner cached the value, but it may already have been evicted
		// under churn; returning its result directly keeps the contract
		// either way.
		return fl.val, nil
	}
	fl := &inflightBuild{done: make(chan struct{})}
	c.inflight[k] = fl
	c.stats.Misses++
	c.mu.Unlock()

	fl.val, fl.err = build(ctx)
	c.mu.Lock()
	delete(c.inflight, k)
	if fl.err == nil {
		c.stats.Builds++
		c.put(k, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, fl.err
}
