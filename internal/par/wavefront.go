package par

import "context"

// Wavefront scheduling for blocked dynamic programs: the DP matrix is cut
// into blocks whose dependencies (left, top, top-left neighbors) make every
// anti-diagonal of blocks independent once the previous diagonal is done.
// WavefrontCtx runs the diagonals in sequence with a full barrier between
// them and dispatches the blocks of one diagonal across workers through the
// same chunked atomic counter as ForShard, so the elastic DP kernels in
// internal/elastic inherit load balancing, panic containment, and
// cooperative cancellation without new machinery.

// WavefrontCtx runs fn(worker, d, k) for every diagonal d in [0, diagonals)
// and every block k in [0, blocks(d)), with a barrier after each diagonal:
// no block of diagonal d starts before every block of diagonal d-1 has
// finished, which is exactly the dependency order of an anti-diagonal
// blocked DP. Within one diagonal, blocks are dispatched across up to
// workers goroutines; worker indices lie in [0, workers) on every diagonal,
// so per-worker scratch allocated once is valid throughout.
//
// Cancellation follows the ForShardCtx contract per diagonal: the context
// is observed before every chunk claim and between diagonals, a cancelled
// run returns ctx.Err() after at most one in-flight chunk per worker, and
// completed diagonals are never partially visible to later ones (the
// barrier held). A nil context never cancels.
func WavefrontCtx(ctx context.Context, diagonals, workers int, blocks func(d int) int, fn func(worker, d, k int)) error {
	for d := 0; d < diagonals; d++ {
		nb := blocks(d)
		if nb <= 0 {
			continue
		}
		d := d
		if err := ForShardCtx(ctx, nb, workers, func(worker, k int) {
			fn(worker, d, k)
		}); err != nil {
			return err
		}
	}
	return nil
}
