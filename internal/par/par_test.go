package par

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		for _, workers := range []int{1, 2, 3, 8, 200} {
			hits := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForShardWorkerIndexInRange(t *testing.T) {
	const n, workers = 500, 4
	var mu sync.Mutex
	seen := map[int]bool{}
	ForShard(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
		}
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) == 0 {
		t.Fatal("no workers ran")
	}
}

func TestForShardAscendingWithinWorker(t *testing.T) {
	const n, workers = 2000, 4
	last := make([]int, workers)
	for w := range last {
		last[w] = -1
	}
	ForShard(n, workers, func(w, i int) {
		if i <= last[w] {
			t.Errorf("worker %d: index %d after %d", w, i, last[w])
		}
		last[w] = i
	})
}

func TestForSequentialFallback(t *testing.T) {
	// workers <= 1 must run inline, in order, on worker 0.
	prev := -1
	ForShard(10, 1, func(w, i int) {
		if w != 0 {
			t.Errorf("expected worker 0, got %d", w)
		}
		if i != prev+1 {
			t.Errorf("out-of-order inline iteration: %d after %d", i, prev)
		}
		prev = i
	})
	if prev != 9 {
		t.Fatalf("inline run stopped at %d", prev)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 30); w < 1 {
		t.Errorf("Workers(big) = %d", w)
	}
}
