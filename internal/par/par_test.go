package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023} {
		for _, workers := range []int{1, 2, 3, 8, 200} {
			hits := make([]int32, n)
			For(n, workers, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d hit %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestForShardWorkerIndexInRange(t *testing.T) {
	const n, workers = 500, 4
	var mu sync.Mutex
	seen := map[int]bool{}
	ForShard(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker index %d out of range", w)
		}
		mu.Lock()
		seen[w] = true
		mu.Unlock()
	})
	if len(seen) == 0 {
		t.Fatal("no workers ran")
	}
}

func TestForShardAscendingWithinWorker(t *testing.T) {
	const n, workers = 2000, 4
	last := make([]int, workers)
	for w := range last {
		last[w] = -1
	}
	ForShard(n, workers, func(w, i int) {
		if i <= last[w] {
			t.Errorf("worker %d: index %d after %d", w, i, last[w])
		}
		last[w] = i
	})
}

func TestForSequentialFallback(t *testing.T) {
	// workers <= 1 must run inline, in order, on worker 0.
	prev := -1
	ForShard(10, 1, func(w, i int) {
		if w != 0 {
			t.Errorf("expected worker 0, got %d", w)
		}
		if i != prev+1 {
			t.Errorf("out-of-order inline iteration: %d after %d", i, prev)
		}
		prev = i
	})
	if prev != 9 {
		t.Fatalf("inline run stopped at %d", prev)
	}
}

func TestWorkers(t *testing.T) {
	if w := Workers(0); w != 1 {
		t.Errorf("Workers(0) = %d, want 1", w)
	}
	if w := Workers(1); w != 1 {
		t.Errorf("Workers(1) = %d, want 1", w)
	}
	if w := Workers(1 << 30); w < 1 {
		t.Errorf("Workers(big) = %d", w)
	}
}

func TestWorkersRespectsGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, p := range []int{1, 2, 3} {
		runtime.GOMAXPROCS(p)
		if w := Workers(1 << 30); w != p {
			t.Errorf("GOMAXPROCS=%d: Workers(big) = %d, want %d", p, w, p)
		}
	}
}

func TestForCtxNilAndUncancelledMatchFor(t *testing.T) {
	for _, n := range []int{0, 1, 7, 100, 1023} {
		for _, workers := range []int{1, 4} {
			want := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&want[i], int32(i+1)) })

			got := make([]int32, n)
			if err := ForCtx(nil, n, workers, func(i int) { atomic.AddInt32(&got[i], int32(i+1)) }); err != nil {
				t.Fatalf("ForCtx(nil): %v", err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nil-ctx mismatch at %d: %d vs %d", i, got[i], want[i])
				}
			}

			got = make([]int32, n)
			if err := ForCtx(context.Background(), n, workers, func(i int) { atomic.AddInt32(&got[i], int32(i+1)) }); err != nil {
				t.Fatalf("ForCtx(Background): %v", err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("background-ctx mismatch at %d: %d vs %d", i, got[i], want[i])
				}
			}
		}
	}
}

func TestForCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := ForCtx(ctx, 1000, 4, func(i int) { atomic.AddInt32(&ran, 1) })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Errorf("%d iterations ran under a pre-cancelled context", ran)
	}
}

func TestForShardCtxCancellationBoundsExtraWork(t *testing.T) {
	// Cancel the context from inside iteration 0 of each worker's first
	// chunk. The contract: a cancelled run stops within one chunk per
	// worker, so the iteration count is bounded by workers * chunk size
	// (chunks in flight at cancellation finish; nothing new is claimed).
	const n, workers = 100_000, 4
	chunk := n / (workers * chunksPerWorker)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForShardCtx(ctx, n, workers, func(_, i int) {
		cancel()
		ran.Add(1)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	limit := int64(workers * chunk)
	if got := ran.Load(); got > limit {
		t.Errorf("cancelled run executed %d iterations, want <= %d (one chunk per worker)", got, limit)
	}
}

func TestForShardCtxPanicPropagatesOriginalValue(t *testing.T) {
	type sentinel struct{ msg string }
	val := sentinel{msg: "worker exploded"}
	for _, workers := range []int{1, 4} {
		before := runtime.NumGoroutine()
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic did not propagate", workers)
				}
				got, ok := r.(sentinel)
				if !ok || got != val {
					t.Fatalf("workers=%d: recovered %#v, want original %#v", workers, r, val)
				}
			}()
			_ = ForShardCtx(context.Background(), 10_000, workers, func(_, i int) {
				if i == 3 {
					panic(val)
				}
			})
		}()
		// Workers must all have exited before the panic re-raised; poll
		// briefly to absorb scheduler lag in goroutine accounting.
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if after := runtime.NumGoroutine(); after > before {
			t.Errorf("workers=%d: goroutine leak after panic: %d -> %d", workers, before, after)
		}
	}
}

func TestForShardCtxPanicStopsDispatch(t *testing.T) {
	// After any worker panics, other workers stop claiming chunks: the
	// total executed iteration count stays far below n.
	const n, workers = 1_000_000, 4
	var ran atomic.Int64
	func() {
		defer func() { _ = recover() }()
		_ = ForShardCtx(context.Background(), n, workers, func(_, i int) {
			ran.Add(1)
			if ran.Load() == 1 {
				panic("stop")
			}
		})
	}()
	if got := ran.Load(); got >= n {
		t.Errorf("dispatch did not stop after panic: ran %d of %d", got, n)
	}
}
