package par

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestWavefrontBarrier asserts the scheduling invariant DP kernels rely
// on: a block of diagonal d never starts before every block of diagonal
// d-1 completed.
func TestWavefrontBarrier(t *testing.T) {
	const diags = 9
	blocks := func(d int) int {
		if d < diags/2 {
			return d + 1
		}
		return diags - d
	}
	done := make([]atomic.Int64, diags)
	var violations atomic.Int64
	err := WavefrontCtx(context.Background(), diags, 4, blocks, func(_, d, k int) {
		if d > 0 && int(done[d-1].Load()) != blocks(d-1) {
			violations.Add(1)
		}
		done[d].Add(1)
	})
	if err != nil {
		t.Fatalf("WavefrontCtx: %v", err)
	}
	if violations.Load() != 0 {
		t.Fatalf("%d blocks started before the previous diagonal finished", violations.Load())
	}
	for d := 0; d < diags; d++ {
		if int(done[d].Load()) != blocks(d) {
			t.Fatalf("diagonal %d ran %d of %d blocks", d, done[d].Load(), blocks(d))
		}
	}
}

// TestWavefrontVisitsEveryBlock checks exact coverage (each block once)
// across worker counts, including the serial inline path.
func TestWavefrontVisitsEveryBlock(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var mu sync.Mutex
		seen := map[[2]int]int{}
		err := WavefrontCtx(context.Background(), 6, workers, func(d int) int { return 3 }, func(_, d, k int) {
			mu.Lock()
			seen[[2]int{d, k}]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(seen) != 18 {
			t.Fatalf("workers=%d: visited %d blocks, want 18", workers, len(seen))
		}
		for dk, n := range seen {
			if n != 1 {
				t.Fatalf("workers=%d: block %v ran %d times", workers, dk, n)
			}
		}
	}
}

// TestWavefrontWorkerIndexBounds asserts worker indices stay in
// [0, workers) on every diagonal, so per-worker scratch sized once is safe.
func TestWavefrontWorkerIndexBounds(t *testing.T) {
	const workers = 3
	var bad atomic.Int64
	err := WavefrontCtx(context.Background(), 5, workers, func(d int) int { return 8 }, func(w, _, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.Load() != 0 {
		t.Fatalf("%d blocks saw a worker index outside [0, %d)", bad.Load(), workers)
	}
}

// TestWavefrontCancellationMidRun cancels from inside an early diagonal and
// asserts the run stops with ctx.Err() before any later diagonal starts:
// the barrier turns chunk-level cancellation into diagonal-level atomicity.
func TestWavefrontCancellationMidRun(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var maxDiag atomic.Int64
		err := WavefrontCtx(ctx, 64, workers, func(d int) int { return 4 }, func(_, d, _ int) {
			if v := int64(d); v > maxDiag.Load() {
				maxDiag.Store(v)
			}
			if d == 2 {
				cancel()
			}
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// Cancellation is observed before every chunk claim and between
		// diagonals; the diagonal that triggered it (2) finishes (barrier),
		// and diagonal 3 must never be reached.
		if maxDiag.Load() > 2 {
			t.Fatalf("workers=%d: diagonal %d ran after cancellation on diagonal 2", workers, maxDiag.Load())
		}
		cancel()
	}
}

// TestWavefrontPreCancelled asserts a cancelled context stops the schedule
// before the first block.
func TestWavefrontPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := WavefrontCtx(ctx, 3, 2, func(d int) int { return 2 }, func(_, _, _ int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("block ran under a pre-cancelled context")
	}
}

// TestWavefrontNilContext mirrors the ForShardCtx contract: a nil context
// never cancels.
func TestWavefrontNilContext(t *testing.T) {
	n := 0
	if err := WavefrontCtx(nil, 2, 1, func(d int) int { return 2 }, func(_, _, _ int) { n++ }); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("ran %d blocks, want 4", n)
	}
}

// TestWavefrontEmptyDiagonals: zero-block diagonals are skipped, later
// ones still run (a banded DP can have leading/trailing empty diagonals).
func TestWavefrontEmptyDiagonals(t *testing.T) {
	var got []int
	err := WavefrontCtx(context.Background(), 4, 1, func(d int) int {
		if d%2 == 0 {
			return 0
		}
		return 1
	}, func(_, d, _ int) { got = append(got, d) })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("ran diagonals %v, want [1 3]", got)
	}
}
