// Package par provides the shared parallel-for primitive used by the
// evaluation and search hot paths. Iterations are handed out in chunks
// through an atomic counter rather than one index at a time over a
// channel, so cheap lock-step rows do not serialize on dispatch while
// expensive elastic tails still balance across workers.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker controls the dispatch granularity: each worker receives
// on the order of chunksPerWorker chunks, keeping the atomic counter cold
// while leaving enough chunks for load balancing when iteration costs are
// skewed (e.g. the shrinking rows of a triangular matrix).
const chunksPerWorker = 8

// Workers returns the worker count for n independent iterations: the CPU
// count capped at n, and at least 1.
func Workers(n int) int {
	w := runtime.NumCPU()
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) across up to workers goroutines.
func For(n, workers int, fn func(i int)) {
	ForShard(n, workers, func(_, i int) { fn(i) })
}

// ForShard is For with the worker index passed through, so callers can
// maintain per-worker scratch state without locking. Worker indices lie in
// [0, workers). Within one worker, iterations arrive in increasing order;
// chunks are claimed in increasing order globally.
func ForShard(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
}
