// Package par provides the shared parallel-for primitive used by the
// evaluation and search hot paths. Iterations are handed out in chunks
// through an atomic counter rather than one index at a time over a
// channel, so cheap lock-step rows do not serialize on dispatch while
// expensive elastic tails still balance across workers.
//
// The context-aware variants (ForCtx, ForShardCtx) add the run-core
// contract every long-running caller builds on: cooperative cancellation
// checked at chunk-claim granularity (a cancelled run stops within one
// chunk per worker) and worker panic containment (a panic inside any
// iteration is recovered, stops the remaining dispatch, and is re-raised
// on the caller goroutine with its original value once every worker has
// exited, so no goroutine leaks and no panic escapes on a foreign stack).
// For and ForShard are thin wrappers over the same core with a nil done
// channel, so the hot path pays nothing for the plumbing.
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// chunksPerWorker controls the dispatch granularity: each worker receives
// on the order of chunksPerWorker chunks, keeping the atomic counter cold
// while leaving enough chunks for load balancing when iteration costs are
// skewed (e.g. the shrinking rows of a triangular matrix). It also bounds
// the cancellation latency: a cancelled context is observed before every
// chunk claim, so at most one chunk per worker runs after cancellation.
const chunksPerWorker = 8

// Workers returns the worker count for n independent iterations: the
// effective parallelism GOMAXPROCS(0) capped at n, and at least 1.
// GOMAXPROCS — not NumCPU — so container CPU quotas and test-time
// runtime.GOMAXPROCS overrides bound the goroutine count.
func Workers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// For runs fn(i) for every i in [0, n) across up to workers goroutines.
func For(n, workers int, fn func(i int)) {
	ForShard(n, workers, func(_, i int) { fn(i) })
}

// ForShard is For with the worker index passed through, so callers can
// maintain per-worker scratch state without locking. Worker indices lie in
// [0, workers). Within one worker, iterations arrive in increasing order;
// chunks are claimed in increasing order globally.
func ForShard(n, workers int, fn func(worker, i int)) {
	forShard(nil, n, workers, fn)
}

// ForCtx is For with cooperative cancellation: the context is checked
// before every chunk claim, so a cancelled run stops within one chunk per
// worker and returns the context's error with the remaining iterations
// unvisited. An uncancelled run executes the exact same chunk schedule as
// For. A nil context never cancels.
func ForCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	return ForShardCtx(ctx, n, workers, func(_, i int) { fn(i) })
}

// ForShardCtx is ForShard with cooperative cancellation; see ForCtx. On a
// non-nil error some iterations did not run; visited iterations form a
// prefix of each worker's chunk sequence, never a partial chunk.
func ForShardCtx(ctx context.Context, n, workers int, fn func(worker, i int)) error {
	if ctx == nil {
		forShard(nil, n, workers, fn)
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	forShard(ctx.Done(), n, workers, fn)
	return ctx.Err()
}

// forShard is the shared dispatch core. done is an optional cancellation
// signal (nil = never cancels) polled before every chunk claim; a closed
// done stops further claims but lets in-flight chunks finish, keeping the
// "no partial chunk" invariant callers rely on for partial results.
func forShard(done <-chan struct{}, n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	chunk := n / (workers * chunksPerWorker)
	if chunk < 1 {
		chunk = 1
	}
	if workers <= 1 {
		// Inline on the caller goroutine: same iteration order as before,
		// cancellation honored between chunks, panics propagate natively.
		for start := 0; start < n; start += chunk {
			select {
			case <-done:
				return
			default:
			}
			end := start + chunk
			if end > n {
				end = n
			}
			for i := start; i < end; i++ {
				fn(0, i)
			}
		}
		return
	}
	forShardParallel(done, n, workers, chunk, fn)
}

// forShardParallel is forShard's multi-worker dispatch. It lives in its own
// function so the worker closure's captured variables are heap-moved only
// on this path: with them inline, escape analysis would charge the serial
// path (whose allocation-free warm runs internal/kernel pins) one heap
// move per call for a closure it never creates.
func forShardParallel(done <-chan struct{}, n, workers, chunk int, fn func(worker, i int)) {
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicked  atomic.Bool
		panicOnce sync.Once
		panicVal  any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer func() {
				if r := recover(); r != nil {
					// Keep the first panic value verbatim; it is re-raised
					// on the caller goroutine after every worker exits.
					panicOnce.Do(func() { panicVal = r })
					panicked.Store(true)
				}
				wg.Done()
			}()
			for {
				if panicked.Load() {
					return
				}
				select {
				case <-done:
					return
				default:
				}
				end := int(next.Add(int64(chunk)))
				start := end - chunk
				if start >= n {
					return
				}
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(worker, i)
				}
			}
		}(w)
	}
	wg.Wait()
	if panicked.Load() {
		panic(panicVal)
	}
}
