// Package sliding implements the 4 cross-correlation distance measures of
// Section 6 of the paper: NCC, the biased estimator NCCb, the unbiased
// estimator NCCu, and the coefficient normalization NCCc (the SBD measure
// of k-Shape). Each slides one series over all 2m-1 shifts of the other and
// keeps the best alignment. All variants are backed by the FFT-based
// cross-correlation, O(m log m), and implement the measure.Stateful fast
// path so full dissimilarity matrices reuse each series' forward transform.
package sliding

import (
	"math"

	"repro/internal/fft"
	"repro/internal/measure"
)

// Variant selects the normalization of the cross-correlation sequence.
type Variant int

const (
	// NCC takes the raw maximum of the cross-correlation sequence.
	NCC Variant = iota
	// NCCb divides by the length m (biased estimator).
	NCCb
	// NCCu divides each shift w by m - |w-m| (unbiased estimator).
	NCCu
	// NCCc divides by ||x||*||y|| (coefficient normalization, SBD).
	NCCc
)

// String returns the variant's registry name.
func (v Variant) String() string {
	switch v {
	case NCC:
		return "ncc"
	case NCCb:
		return "nccb"
	case NCCu:
		return "nccu"
	case NCCc:
		return "nccc"
	default:
		return "ncc?"
	}
}

// Measure is a sliding cross-correlation dissimilarity.
type Measure struct {
	variant Variant
}

// New returns the sliding measure for the chosen variant.
func New(v Variant) *Measure { return &Measure{variant: v} }

// Name implements measure.Measure.
func (m *Measure) Name() string { return m.variant.String() }

// prepared is the per-series state for the Stateful fast path.
type prepared struct {
	plan *fft.Plan
	norm float64 // Euclidean norm, used by NCCc
}

// Prepare implements measure.Stateful.
func (m *Measure) Prepare(x []float64) any {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	return &prepared{plan: fft.NewPlan(x), norm: math.Sqrt(ss)}
}

// PreparedDistance implements measure.Stateful.
func (m *Measure) PreparedDistance(px, py any) float64 {
	a := px.(*prepared)
	b := py.(*prepared)
	cc := a.plan.CrossCorrelateWith(b.plan)
	return m.fromCC(cc, a.plan.Len(), a.norm, b.norm)
}

// Distance implements measure.Measure. Similarities are converted to
// dissimilarities: NCCc becomes 1 - max (the SBD distance in [0, 2] for
// unit-norm inputs); the unbounded variants are negated, which preserves
// nearest-neighbor ordering.
func (m *Measure) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	cc := fft.CrossCorrelation(x, y)
	var nx, ny float64
	if m.variant == NCCc {
		for _, v := range x {
			nx += v * v
		}
		for _, v := range y {
			ny += v * v
		}
		nx, ny = math.Sqrt(nx), math.Sqrt(ny)
	}
	return m.fromCC(cc, len(x), nx, ny)
}

// fromCC converts the full cross-correlation sequence into the variant's
// dissimilarity. Index k of cc corresponds to w = k+1 in the paper's
// notation (w in 1..2m-1).
func (m *Measure) fromCC(cc []float64, length int, nx, ny float64) float64 {
	if len(cc) == 0 {
		// Two empty series are identical; without this guard the similarity
		// maximum stays -Inf and every variant reported +Inf (or 1).
		return 0
	}
	best := math.Inf(-1)
	switch m.variant {
	case NCC:
		for _, v := range cc {
			if v > best {
				best = v
			}
		}
	case NCCb:
		mf := float64(length)
		for _, v := range cc {
			if s := v / mf; s > best {
				best = s
			}
		}
	case NCCu:
		mf := float64(length)
		for k, v := range cc {
			w := float64(k + 1)
			den := mf - math.Abs(w-mf)
			if den <= 0 {
				continue
			}
			if s := v / den; s > best {
				best = s
			}
		}
	case NCCc:
		den := nx * ny
		if den == 0 {
			// A zero series correlates zero with everything: the
			// coefficient is defined as 0, giving the maximum distance 1.
			return 1
		}
		for _, v := range cc {
			if s := v / den; s > best {
				best = s
			}
		}
		return 1 - best
	}
	if best == 0 {
		return 0 // avoid the negative zero of -best
	}
	return -best
}

// SBD returns the NCCc measure under its k-Shape name: the shape-based
// distance 1 - max_w CC_w(x, y)/(||x||*||y||).
func SBD() *Measure { return New(NCCc) }

// All returns the 4 sliding measures of Table 3.
func All() []measure.Measure {
	return []measure.Measure{New(NCC), New(NCCb), New(NCCu), New(NCCc)}
}

// DistanceNaive computes the same dissimilarity by the direct O(m^2)
// sliding sum; it backs the correctness tests and the FFT ablation bench.
func (m *Measure) DistanceNaive(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	cc := fft.CrossCorrelationNaive(x, y)
	var nx, ny float64
	if m.variant == NCCc {
		for _, v := range x {
			nx += v * v
		}
		for _, v := range y {
			ny += v * v
		}
		nx, ny = math.Sqrt(nx), math.Sqrt(ny)
	}
	return m.fromCC(cc, len(x), nx, ny)
}
