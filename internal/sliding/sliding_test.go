package sliding

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{NCC: "ncc", NCCb: "nccb", NCCu: "nccu", NCCc: "nccc"}
	for v, name := range want {
		if New(v).Name() != name {
			t.Errorf("variant %d name = %s, want %s", v, New(v).Name(), name)
		}
	}
}

func TestSBDIdenticalSeriesIsZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := dataset.ZNormalize(randSeries(rng, 64))
	if d := SBD().Distance(x, x); math.Abs(d) > 1e-9 {
		t.Fatalf("SBD(x,x) = %g, want 0", d)
	}
}

func TestSBDRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(100)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		d := SBD().Distance(x, y)
		return d >= -1e-9 && d <= 2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSBDShiftInvariance(t *testing.T) {
	// The defining property: a circular shift of a series is at distance ~0
	// from the original (up to the wrapped boundary, so use a padded shape).
	m := 128
	x := make([]float64, m)
	for i := 40; i < 60; i++ {
		x[i] = 1
	}
	shifted := make([]float64, m)
	copy(shifted[25:], x[:m-25]) // linear shift by 25; bump stays inside
	// SBD recovers the alignment; only the truncated overlap of the
	// z-normalized baseline keeps it slightly above zero.
	d := SBD().Distance(dataset.ZNormalize(x), dataset.ZNormalize(shifted))
	if d > 0.1 {
		t.Fatalf("SBD of shifted bump = %g, want ~0", d)
	}
	// ED of the same pair is large, demonstrating the misconception M3 setup.
	var ed float64
	zx, zs := dataset.ZNormalize(x), dataset.ZNormalize(shifted)
	for i := range zx {
		dd := zx[i] - zs[i]
		ed += dd * dd
	}
	if math.Sqrt(ed) < 1 {
		t.Fatal("test setup broken: ED should be large for the shifted pair")
	}
}

func TestAllVariantsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{5, 16, 33, 64} {
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		for _, m := range []*Measure{New(NCC), New(NCCb), New(NCCu), New(NCCc)} {
			fast := m.Distance(x, y)
			naive := m.DistanceNaive(x, y)
			if math.Abs(fast-naive) > 1e-8*(1+math.Abs(naive)) {
				t.Errorf("%s n=%d: fft %g != naive %g", m.Name(), n, fast, naive)
			}
		}
	}
}

func TestPreparedDistanceMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randSeries(rng, 50)
	y := randSeries(rng, 50)
	for _, m := range []*Measure{New(NCC), New(NCCb), New(NCCu), New(NCCc)} {
		px := m.Prepare(x)
		py := m.Prepare(y)
		got := m.PreparedDistance(px, py)
		want := m.Distance(x, y)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Errorf("%s: prepared %g != direct %g", m.Name(), got, want)
		}
	}
}

func TestNCCbIsScaledNCC(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randSeries(rng, 40)
	y := randSeries(rng, 40)
	ncc := New(NCC).Distance(x, y)   // -max(CC)
	nccb := New(NCCb).Distance(x, y) // -max(CC)/m
	if math.Abs(nccb-ncc/40) > 1e-9*(1+math.Abs(ncc)) {
		t.Fatalf("NCCb %g != NCC/m %g", nccb, ncc/40)
	}
}

func TestNCCcZeroSeries(t *testing.T) {
	zero := make([]float64, 16)
	x := randSeries(rand.New(rand.NewSource(5)), 16)
	if d := SBD().Distance(x, zero); d != 1 {
		t.Fatalf("SBD against zero series = %g, want 1", d)
	}
	if d := SBD().Distance(zero, zero); d != 1 {
		t.Fatalf("SBD(0, 0) = %g, want 1 (defined as max distance)", d)
	}
}

func TestSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randSeries(rng, 30)
	y := randSeries(rng, 30)
	for _, m := range []*Measure{New(NCC), New(NCCb), New(NCCu), New(NCCc)} {
		// Cross-correlation at shift s of (x,y) equals shift -s of (y,x);
		// the max over all shifts is therefore symmetric.
		if d1, d2 := m.Distance(x, y), m.Distance(y, x); math.Abs(d1-d2) > 1e-9*(1+math.Abs(d1)) {
			t.Errorf("%s not symmetric: %g vs %g", m.Name(), d1, d2)
		}
	}
}

func TestAllReturnsFourMeasures(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() = %d measures, want 4", len(all))
	}
	seen := map[string]bool{}
	for _, m := range all {
		if seen[m.Name()] {
			t.Errorf("duplicate %s", m.Name())
		}
		seen[m.Name()] = true
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SBD().Distance([]float64{1, 2}, []float64{1, 2, 3})
}

func BenchmarkSBDFFT(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	m := SBD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Distance(x, y)
	}
}

func BenchmarkSBDNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	m := SBD()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.DistanceNaive(x, y)
	}
}

func BenchmarkSBDPrepared(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	m := SBD()
	px := m.Prepare(x)
	py := m.Prepare(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PreparedDistance(px, py)
	}
}
