package kernel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/linalg"
	"repro/internal/par"
)

// gramTile is the square tile edge of the parallel Gram fill. A tile is
// the unit of work handed to a worker: 16x16 = 256 pairs amortize the
// dispatch counter while keeping the 2n-1 cross-correlation buffers of the
// tile's row plans hot in cache between consecutive pairs.
const gramTile = 16

// gramScratch is one worker's reusable pair buffers: the padded complex
// FFT scratch and the real cross-correlation output. Sized once per fill,
// so steady-state tile work performs no allocations.
type gramScratch struct {
	buf []complex128
	cc  []float64
}

// GramEngine computes all-pairs SINK kernel values over a fixed set of
// equal-length series. It prepares one padded FFT spectrum, norm, and self
// cross-correlation per series once (the same candidate-independent core
// as SINK.GridPrepare), then fills matrices in parallel cache-blocked
// tiles, spending one pointwise spectrum product + one inverse FFT + one
// sumExp per pair — where the naive per-pair build pays two forward and
// three inverse transforms plus three sumExp passes for every entry.
//
// Per-pair arithmetic is step-for-step the sequence SINK.PreparedDistance
// executes (fft.CrossCorrelateTo is bitwise-equal to CrossCorrelateWith,
// sumExp and normalized are the very same methods), so engine outputs are
// bitwise identical to the naive prepared path; tiling only changes the
// order in which independent pairs are visited, never the summation order
// within a pair.
type GramEngine struct {
	sink SINK
	n    int // series count
	m    int // series length

	plans  []*fft.Plan
	norms  []float64
	ccSelf [][]float64 // self cross-correlation per series (gamma-independent)
	self   []float64   // unnormalized self-kernel per series (gamma-dependent)

	scratch []gramScratch // per-worker pair buffers, grown lazily
}

// NewGramEngine prepares the engine for the given series. All series must
// share one length (it panics on ragged input, like the underlying FFT
// plans would); zero-length series are legal and produce the degenerate
// distance 1 everywhere, matching SINK.Distance.
func NewGramEngine(s SINK, series [][]float64) *GramEngine {
	e, _ := NewGramEngineCtx(context.Background(), s, series)
	return e
}

// NewGramEngineCtx is NewGramEngine honoring cancellation during the
// parallel per-series preparation; on a non-nil error the engine is
// unusable and must be discarded.
func NewGramEngineCtx(ctx context.Context, s SINK, series [][]float64) (*GramEngine, error) {
	e := &GramEngine{sink: s, n: len(series)}
	if e.n == 0 {
		return e, nil
	}
	e.m = len(series[0])
	for i, x := range series {
		if len(x) != e.m {
			panic(fmt.Sprintf("kernel: GramEngine ragged input: series %d has length %d, want %d",
				i, len(x), e.m))
		}
	}
	e.plans = make([]*fft.Plan, e.n)
	e.norms = make([]float64, e.n)
	e.ccSelf = make([][]float64, e.n)
	e.self = make([]float64, e.n)
	// The per-series core is the bitwise computation of SINK.GridPrepare
	// (norm accumulation order included), parallelized across series.
	if err := par.ForCtx(ctx, e.n, par.Workers(e.n), func(i int) {
		x := series[i]
		var ss float64
		for _, v := range x {
			ss += v * v
		}
		e.norms[i] = math.Sqrt(ss)
		e.plans[i] = fft.NewPlan(x)
		e.ccSelf[i] = e.plans[i].CrossCorrelateWith(e.plans[i])
		e.self[i] = s.sumExp(e.ccSelf[i], e.norms[i]*e.norms[i])
	}); err != nil {
		return nil, err
	}
	return e, nil
}

// Len returns the number of series the engine was built over.
func (e *GramEngine) Len() int { return e.n }

// SetGamma re-targets the engine at a different SINK gamma, re-deriving
// only the gamma-dependent self-kernels from the cached gamma-independent
// cores — the CandidateState specialization of the grid machinery, applied
// in place. FFT spectra and self cross-correlations are reused as-is.
func (e *GramEngine) SetGamma(gamma float64) {
	e.sink.Gamma = gamma
	par.For(e.n, par.Workers(e.n), func(i int) {
		e.self[i] = e.sink.sumExp(e.ccSelf[i], e.norms[i]*e.norms[i])
	})
}

// arena returns per-worker scratch for workers workers, growing the pool
// and its buffers only when a larger fill than any before runs.
func (e *GramEngine) arena(workers int) []gramScratch {
	if len(e.scratch) < workers {
		grown := make([]gramScratch, workers)
		copy(grown, e.scratch)
		e.scratch = grown
	}
	padded, ccLen := 0, 0
	if e.n > 0 {
		padded = e.plans[0].PaddedLen()
	}
	if e.m > 0 {
		ccLen = 2*e.m - 1
	}
	sc := e.scratch[:workers]
	for w := range sc {
		if cap(sc[w].buf) < padded {
			sc[w].buf = make([]complex128, padded)
		}
		if cap(sc[w].cc) < ccLen {
			sc[w].cc = make([]float64, ccLen)
		}
	}
	return sc
}

// pairDistance computes the normalized SINK dissimilarity of series i and
// j using sc's buffers. The statement sequence mirrors
// SINK.PreparedDistance exactly; only the buffer provenance differs.
func (e *GramEngine) pairDistance(i, j int, sc *gramScratch) float64 {
	cc := e.plans[i].CrossCorrelateTo(e.plans[j], sc.cc, sc.buf)
	kxy := e.sink.sumExp(cc, e.norms[i]*e.norms[j])
	return normalized(kxy, e.self[i], e.self[j])
}

// FillDistances writes the full directed n-by-n dissimilarity matrix into
// rows (rows[i][j] = d(series i, series j), raw — the caller sanitizes).
// Both triangles are computed independently, cell for cell, because SINK
// does not declare exact symmetry: the FFT product for (i, j) conjugates
// the opposite spectrum from (j, i), so mirrored values could differ in
// the last bits from what the per-pair path returns. Tiles are dispatched
// over internal/par with one scratch arena entry per worker.
func (e *GramEngine) FillDistances(rows [][]float64) {
	// nil, not context.Background(): the escaping backgroundCtx composite
	// would cost the hot path one heap allocation per fill.
	_ = e.FillDistancesCtx(nil, rows)
}

// FillDistancesCtx is FillDistances honoring cancellation: a cancelled
// fill stops within one tile per worker and returns ctx.Err() with rows
// partially written (the caller must discard them). An uncancelled fill
// runs the exact same tile schedule as FillDistances. A nil ctx never
// cancels.
func (e *GramEngine) FillDistancesCtx(ctx context.Context, rows [][]float64) error {
	if e.n == 0 {
		return nil
	}
	if len(rows) != e.n {
		panic(fmt.Sprintf("kernel: FillDistances got %d rows, want %d", len(rows), e.n))
	}
	nt := (e.n + gramTile - 1) / gramTile
	tiles := nt * nt
	workers := par.Workers(tiles)
	sc := e.arena(workers)
	return par.ForShardCtx(ctx, tiles, workers, func(worker, t int) {
		s := &sc[worker]
		iLo := (t / nt) * gramTile
		jLo := (t % nt) * gramTile
		iHi, jHi := iLo+gramTile, jLo+gramTile
		if iHi > e.n {
			iHi = e.n
		}
		if jHi > e.n {
			jHi = e.n
		}
		for i := iLo; i < iHi; i++ {
			row := rows[i]
			for j := jLo; j < jHi; j++ {
				row[j] = e.pairDistance(i, j, s)
			}
		}
	})
}

// Gram returns the normalized SINK kernel Gram matrix K with K[i][j] =
// 1 - d(series i, series j), unit diagonal, computed over upper-triangle
// tiles and mirrored — the construction GRAIL's Nyström step uses (which
// symmetrized the kernel from the upper triangle before this engine
// existed, so mirroring preserves its exact values). A tile's mirror
// writes land in strictly-lower tiles no worker owns, so the parallel
// fill is race-free.
func (e *GramEngine) Gram() *linalg.Matrix {
	g, _ := e.GramCtx(context.Background())
	return g
}

// GramCtx is Gram honoring cancellation; on a non-nil error the returned
// matrix is partial and must be discarded.
func (e *GramEngine) GramCtx(ctx context.Context) (*linalg.Matrix, error) {
	g := linalg.NewMatrix(e.n, e.n)
	if e.n == 0 {
		return g, nil
	}
	nt := (e.n + gramTile - 1) / gramTile
	// Flat work list of upper-triangle tiles (ti <= tj).
	tiles := make([][2]int, 0, nt*(nt+1)/2)
	for ti := 0; ti < nt; ti++ {
		for tj := ti; tj < nt; tj++ {
			tiles = append(tiles, [2]int{ti, tj})
		}
	}
	workers := par.Workers(len(tiles))
	sc := e.arena(workers)
	err := par.ForShardCtx(ctx, len(tiles), workers, func(worker, t int) {
		s := &sc[worker]
		iLo, jLo := tiles[t][0]*gramTile, tiles[t][1]*gramTile
		iHi, jHi := iLo+gramTile, jLo+gramTile
		if iHi > e.n {
			iHi = e.n
		}
		if jHi > e.n {
			jHi = e.n
		}
		for i := iLo; i < iHi; i++ {
			jStart := jLo
			if diag := i + 1; jStart < diag {
				jStart = diag
			}
			if jLo <= i && i < jHi {
				// Only the tile containing (i, i) owns the diagonal write.
				g.Data[i*e.n+i] = 1
			}
			for j := jStart; j < jHi; j++ {
				k := 1 - e.pairDistance(i, j, s)
				g.Data[i*e.n+j] = k
				g.Data[j*e.n+i] = k
			}
		}
	})
	return g, err
}

// PreparedStates returns per-series prepared SINK states equivalent —
// bitwise, by the GridStateful contract — to SINK.Prepare on each series,
// so fitted embeddings can keep projecting queries against landmarks
// through PreparedDistance without re-deriving any spectra.
func (e *GramEngine) PreparedStates() []any {
	out := make([]any, e.n)
	for i := range out {
		out[i] = &sinkPrepared{plan: e.plans[i], norm: e.norms[i], self: e.self[i]}
	}
	return out
}
