// Package kernel implements the 4 kernel similarity measures of Section 8
// of the paper: the lock-step RBF kernel, the sliding SINK kernel (the
// shift-invariant kernel of GRAIL, built on the FFT cross-correlation), and
// the two elastic kernels GAK (global alignment, computed in log space for
// numerical stability) and KDTW (the regularized DTW kernel of Marteau &
// Gibet). Each kernel k is exposed as the dissimilarity 1 - k̂ where k̂ is
// the kernel normalized by its self-similarities, so the single 1-NN
// implementation of the evaluation layer serves kernels too.
package kernel

import (
	"context"
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/measure"
)

// normalized converts a raw kernel value and the two self-kernel values
// into the dissimilarity 1 - k(x,y)/sqrt(k(x,x)k(y,y)); degenerate
// self-kernels (0, underflow) give the maximum distance 1.
func normalized(kxy, kxx, kyy float64) float64 {
	den := math.Sqrt(kxx * kyy)
	if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return 1
	}
	return 1 - kxy/den
}

//
// ---- RBF ----
//

// RBF is the radial basis function kernel k(x, y) = exp(-gamma*||x-y||^2),
// the general-purpose lock-step kernel of Table 6 (the one the paper finds
// significantly worse than NCCc). Its self-kernels are 1, so the distance
// is simply 1 - k.
type RBF struct {
	Gamma float64
}

// Name implements measure.Measure.
func (r RBF) Name() string { return fmt.Sprintf("rbf[g=%g]", r.Gamma) }

// Distance implements measure.Measure.
func (r RBF) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	var s float64
	for i := range x {
		d := x[i] - y[i]
		s += d * d
	}
	return 1 - math.Exp(-r.Gamma*s)
}

//
// ---- SINK ----
//

// SINK is the shift-invariant normalized kernel of GRAIL: the sum over all
// 2m-1 shifts of exp(gamma * ncc_w(x, y)) where ncc is the
// coefficient-normalized cross-correlation sequence, normalized by the
// self-kernels. Larger Gamma concentrates the kernel on the best alignment
// (recovering NCCc in the limit); small Gamma averages all alignments.
type SINK struct {
	Gamma float64
}

// Name implements measure.Measure.
func (s SINK) Name() string { return fmt.Sprintf("sink[g=%g]", s.Gamma) }

type sinkPrepared struct {
	plan *fft.Plan
	norm float64
	self float64 // unnormalized self-kernel value
}

// Prepare implements measure.Stateful.
func (s SINK) Prepare(x []float64) any {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	p := &sinkPrepared{plan: fft.NewPlan(x), norm: math.Sqrt(ss)}
	cc := p.plan.CrossCorrelateWith(p.plan)
	p.self = s.sumExp(cc, p.norm*p.norm)
	return p
}

// PreparedDistance implements measure.Stateful.
func (s SINK) PreparedDistance(px, py any) float64 {
	a := px.(*sinkPrepared)
	b := py.(*sinkPrepared)
	cc := a.plan.CrossCorrelateWith(b.plan)
	kxy := s.sumExp(cc, a.norm*b.norm)
	return normalized(kxy, a.self, b.self)
}

// sinkGridState is the candidate-independent core of SINK's preparation:
// the FFT plan, the series norm, and the self cross-correlation sequence.
// Every gamma candidate derives its prepared state from it by one pass of
// exponentials instead of repeating the two FFT transforms.
type sinkGridState struct {
	plan   *fft.Plan
	norm   float64
	ccSelf []float64
}

// SharesPreparation implements measure.GridStateful: grid state is valid
// for any SINK gamma.
func (s SINK) SharesPreparation(other measure.Measure) bool {
	_, ok := other.(SINK)
	return ok
}

// GridPrepare implements measure.GridStateful: the gamma-independent FFT
// work of Prepare, computed once per series for a whole gamma sweep.
func (s SINK) GridPrepare(x []float64) any {
	var ss float64
	for _, v := range x {
		ss += v * v
	}
	g := &sinkGridState{norm: math.Sqrt(ss)}
	g.plan = fft.NewPlan(x)
	g.ccSelf = g.plan.CrossCorrelateWith(g.plan)
	return g
}

// CandidateState implements measure.GridStateful: specializing shared grid
// state to this gamma runs the same sumExp over the same self
// cross-correlation Prepare would compute, so the resulting state is
// bitwise interchangeable with Prepare's.
func (s SINK) CandidateState(shared any) any {
	g := shared.(*sinkGridState)
	return &sinkPrepared{plan: g.plan, norm: g.norm, self: s.sumExp(g.ccSelf, g.norm*g.norm)}
}

// sumExp evaluates sum_w exp(gamma * cc_w / den) with a zero-denominator
// guard (zero series: every coefficient defined as 0).
func (s SINK) sumExp(cc []float64, den float64) float64 {
	var sum float64
	if den == 0 {
		return float64(len(cc)) // exp(0) per shift
	}
	for _, v := range cc {
		sum += math.Exp(s.Gamma * v / den)
	}
	return sum
}

// Distance implements measure.Measure.
func (s SINK) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	return s.PreparedDistance(s.Prepare(x), s.Prepare(y))
}

// SelfMatrix implements measure.SelfMatrixer: square self-dissimilarity
// matrices are filled by the batched GramEngine — one spectrum per series,
// one inverse FFT per pair, tiled parallel fill — with values bitwise
// identical to the per-pair prepared path. Ragged input declines the fast
// path so the caller's pairwise loop reproduces the usual length panic.
func (s SINK) SelfMatrix(series [][]float64, rows [][]float64) bool {
	ok, _ := s.SelfMatrixCtx(context.Background(), series, rows)
	return ok
}

// SelfMatrixCtx implements measure.ContextSelfMatrixer: the engine's
// preparation and tiled fill observe ctx at chunk granularity; on a
// non-nil error rows are partial and must be discarded.
func (s SINK) SelfMatrixCtx(ctx context.Context, series [][]float64, rows [][]float64) (bool, error) {
	if len(series) == 0 {
		return false, nil
	}
	m := len(series[0])
	for _, x := range series {
		if len(x) != m {
			return false, nil
		}
	}
	eng, err := NewGramEngineCtx(ctx, s, series)
	if err != nil {
		return true, err
	}
	return true, eng.FillDistancesCtx(ctx, rows)
}

//
// ---- GAK ----
//

// GAK is Cuturi's (2011) triangular-free global alignment kernel, computed
// in log space (the logGAK recursion) so that long series do not underflow.
// Sigma is the bandwidth of the local Gaussian kernel (the gamma grid of
// Table 4). The distance is the normalized negative log kernel
// -(log k(x,y) - (log k(x,x) + log k(y,y))/2), which is >= 0.
type GAK struct {
	Sigma float64
}

// Name implements measure.Measure.
func (g GAK) Name() string { return fmt.Sprintf("gak[s=%g]", g.Sigma) }

// logK runs the log-space global alignment recursion and returns
// log k(x, y).
func (g GAK) logK(x, y []float64) float64 {
	m := len(x)
	if m == 0 {
		return 0
	}
	twoSigmaSq := 2 * g.Sigma * g.Sigma
	// phi(i, j) = d^2/(2s^2) + log(2 - exp(-d^2/(2s^2))): the geometrically
	// divisible local kernel that keeps GAK positive definite.
	phi := func(a, b float64) float64 {
		d := a - b
		e := d * d / twoSigmaSq
		return e + math.Log(2-math.Exp(-e))
	}
	negInf := math.Inf(-1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = negInf
	}
	prev[0] = 0
	for i := 1; i <= m; i++ {
		cur[0] = negInf
		for j := 1; j <= m; j++ {
			cur[j] = logSumExp3(prev[j], cur[j-1], prev[j-1]) - phi(x[i-1], y[j-1])
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

// logSumExp3 returns log(e^a + e^b + e^c) stably.
func logSumExp3(a, b, c float64) float64 {
	max := a
	if b > max {
		max = b
	}
	if c > max {
		max = c
	}
	if math.IsInf(max, -1) {
		return max
	}
	return max + math.Log(math.Exp(a-max)+math.Exp(b-max)+math.Exp(c-max))
}

type gakPrepared struct {
	x    []float64
	self float64 // log k(x, x)
}

// Prepare implements measure.Stateful.
func (g GAK) Prepare(x []float64) any {
	return &gakPrepared{x: x, self: g.logK(x, x)}
}

// PreparedDistance implements measure.Stateful.
func (g GAK) PreparedDistance(px, py any) float64 {
	a := px.(*gakPrepared)
	b := py.(*gakPrepared)
	return -(g.logK(a.x, b.x) - (a.self+b.self)/2)
}

// Distance implements measure.Measure.
func (g GAK) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	return g.PreparedDistance(g.Prepare(x), g.Prepare(y))
}

//
// ---- KDTW ----
//

// KDTW is the regularized dynamic time warping kernel of Marteau & Gibet
// (2014): the sum of two recursions, an alignment term over all warping
// paths and a regularization term along the diagonal, with local kernel
// (exp(-nu*d^2) + epsilon)/(3*(1+epsilon)). Gamma plays the role of nu
// (Table 4's grid). The distance is 1 - k normalized by the self-kernels.
type KDTW struct {
	Gamma float64
}

// Name implements measure.Measure.
func (k KDTW) Name() string { return fmt.Sprintf("kdtw[g=%g]", k.Gamma) }

// kdtwEpsilon is the regularization constant of the reference
// implementation; it keeps the local kernel bounded away from zero so the
// products of long recursions do not vanish identically.
const kdtwEpsilon = 1e-3

// local returns the regularized local kernel value for points a and b.
func (k KDTW) local(a, b float64) float64 {
	d := a - b
	return (math.Exp(-k.Gamma*d*d) + kdtwEpsilon) / (3 * (1 + kdtwEpsilon))
}

// raw computes the unnormalized KDTW kernel value.
func (k KDTW) raw(x, y []float64) float64 {
	m := len(x)
	if m == 0 {
		return 1
	}
	// DP is the alignment recursion, DP1 the regularization recursion, and
	// diag[i] the local kernel on the aligned pair (x_i, y_i).
	diag := make([]float64, m+1)
	diag[0] = 1
	for i := 1; i <= m; i++ {
		diag[i] = k.local(x[i-1], y[i-1])
	}
	dpPrev := make([]float64, m+1)
	dpCur := make([]float64, m+1)
	dp1Prev := make([]float64, m+1)
	dp1Cur := make([]float64, m+1)
	dpPrev[0] = 1
	dp1Prev[0] = 1
	for j := 1; j <= m; j++ {
		dpPrev[j] = dpPrev[j-1] * k.local(x[0], y[j-1])
		dp1Prev[j] = dp1Prev[j-1] * diag[j]
	}
	for i := 1; i <= m; i++ {
		dpCur[0] = dpPrev[0] * k.local(x[i-1], y[0])
		dp1Cur[0] = dp1Prev[0] * diag[i]
		for j := 1; j <= m; j++ {
			lk := k.local(x[i-1], y[j-1])
			dpCur[j] = (dpPrev[j] + dpCur[j-1] + dpPrev[j-1]) * lk
			if i == j {
				dp1Cur[j] = dp1Prev[j-1]*lk + dp1Prev[j]*diag[i] + dp1Cur[j-1]*diag[j]
			} else {
				dp1Cur[j] = dp1Prev[j]*diag[i] + dp1Cur[j-1]*diag[j]
			}
		}
		dpPrev, dpCur = dpCur, dpPrev
		dp1Prev, dp1Cur = dp1Cur, dp1Prev
	}
	return dpPrev[m] + dp1Prev[m]
}

type kdtwPrepared struct {
	x    []float64
	self float64
}

// Prepare implements measure.Stateful.
func (k KDTW) Prepare(x []float64) any {
	return &kdtwPrepared{x: x, self: k.raw(x, x)}
}

// PreparedDistance implements measure.Stateful.
func (k KDTW) PreparedDistance(px, py any) float64 {
	a := px.(*kdtwPrepared)
	b := py.(*kdtwPrepared)
	return normalized(k.raw(a.x, b.x), a.self, b.self)
}

// Distance implements measure.Measure.
func (k KDTW) Distance(x, y []float64) float64 {
	measure.CheckSameLength(x, y)
	return k.PreparedDistance(k.Prepare(x), k.Prepare(y))
}

// All returns one representative instance of each of the 4 kernel
// functions, at the paper's unsupervised parameter choices (Table 6).
func All() []measure.Measure {
	return []measure.Measure{
		KDTW{Gamma: 0.125},
		GAK{Sigma: 0.1},
		SINK{Gamma: 5},
		RBF{Gamma: 2},
	}
}
