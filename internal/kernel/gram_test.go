package kernel

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/measure"
)

// sinkGammaGrid is Table 4's SINK gamma grid (eval.SINKGrid), hardcoded
// here because the eval package imports kernel.
func sinkGammaGrid() []float64 {
	g := make([]float64, 20)
	for i := range g {
		g[i] = float64(i + 1)
	}
	return g
}

// gramCorpus builds a test set mixing well-behaved random series with the
// degenerate shapes of the oracle corpus: all-zero, constant, NaN- and
// Inf-poisoned, and huge-magnitude series.
func gramCorpus(rng *rand.Rand, n, m int) [][]float64 {
	series := make([][]float64, n)
	for i := range series {
		series[i] = randSeries(rng, m)
	}
	if n >= 5 && m >= 2 {
		series[0] = make([]float64, m) // all zeros
		for j := range series[1] {
			series[1][j] = 3.25 // constant
		}
		series[2][m/2] = math.NaN()
		series[3][0] = math.Inf(1)
		for j := range series[4] {
			series[4][j] = 1e150 * float64(j%3)
		}
	}
	return series
}

// naiveDistanceMatrix is the pre-engine per-pair path: prepare every
// series once, then PreparedDistance per cell — the bitwise reference
// FillDistances must reproduce.
func naiveDistanceMatrix(s SINK, series [][]float64) [][]float64 {
	prep := make([]any, len(series))
	for i, x := range series {
		prep[i] = s.Prepare(x)
	}
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
		for j := range rows[i] {
			rows[i][j] = s.PreparedDistance(prep[i], prep[j])
		}
	}
	return rows
}

func sameValue(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

func TestGramEngineBitwiseVsPreparedPath(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, shape := range [][2]int{{1, 8}, {5, 16}, {18, 33}, {25, 40}} {
		series := gramCorpus(rng, shape[0], shape[1])
		s := SINK{Gamma: 5}
		want := naiveDistanceMatrix(s, series)
		e := NewGramEngine(s, series)
		rows := make([][]float64, len(series))
		for i := range rows {
			rows[i] = make([]float64, len(series))
		}
		e.FillDistances(rows)
		for i := range want {
			for j := range want[i] {
				if !sameValue(rows[i][j], want[i][j]) {
					t.Fatalf("shape %v: engine[%d][%d] = %v, prepared path %v",
						shape, i, j, rows[i][j], want[i][j])
				}
			}
		}
	}
}

func TestGramEngineGammaSweepBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	series := gramCorpus(rng, 9, 16)
	// One engine re-targeted across the grid must match a fresh prepared
	// path per gamma: SetGamma's in-place self-kernel refresh is exact.
	e := NewGramEngine(SINK{Gamma: sinkGammaGrid()[0]}, series)
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	for _, gamma := range sinkGammaGrid() {
		e.SetGamma(gamma)
		e.FillDistances(rows)
		want := naiveDistanceMatrix(SINK{Gamma: gamma}, series)
		for i := range want {
			for j := range want[i] {
				if !sameValue(rows[i][j], want[i][j]) {
					t.Fatalf("gamma %g: engine[%d][%d] = %v, prepared path %v",
						gamma, i, j, rows[i][j], want[i][j])
				}
			}
		}
	}
}

func TestGramMatchesNaiveConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	series := gramCorpus(rng, 21, 24)
	s := SINK{Gamma: 3}
	// The reference is GRAIL's original landmark Gram construction: unit
	// diagonal, upper triangle from the prepared path, mirrored.
	prep := make([]any, len(series))
	for i, x := range series {
		prep[i] = s.Prepare(x)
	}
	e := NewGramEngine(s, series)
	g := e.Gram()
	for i := range series {
		if d := g.At(i, i); d != 1 {
			t.Fatalf("Gram diagonal [%d] = %v, want 1", i, d)
		}
		for j := i + 1; j < len(series); j++ {
			want := 1 - s.PreparedDistance(prep[i], prep[j])
			if !sameValue(g.At(i, j), want) {
				t.Fatalf("Gram[%d][%d] = %v, want %v", i, j, g.At(i, j), want)
			}
			if !sameValue(g.At(j, i), want) {
				t.Fatalf("Gram[%d][%d] (mirror) = %v, want %v", j, i, g.At(j, i), want)
			}
		}
	}
}

func TestGramEnginePreparedStates(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	series := gramCorpus(rng, 7, 12)
	s := SINK{Gamma: 4}
	e := NewGramEngine(s, series)
	states := e.PreparedStates()
	q := randSeries(rng, 12)
	pq := s.Prepare(q)
	for i, st := range states {
		got := s.PreparedDistance(pq, st)
		want := s.PreparedDistance(pq, s.Prepare(series[i]))
		if !sameValue(got, want) {
			t.Fatalf("PreparedStates[%d]: distance %v, want %v", i, got, want)
		}
	}
}

func TestGramEngineEmptyAndZeroLength(t *testing.T) {
	e := NewGramEngine(SINK{Gamma: 5}, nil)
	if e.Len() != 0 {
		t.Fatalf("empty engine Len = %d", e.Len())
	}
	e.FillDistances(nil) // must be a no-op, not a panic
	if g := e.Gram(); g.Rows != 0 || g.Cols != 0 {
		t.Fatalf("empty Gram shape %dx%d", g.Rows, g.Cols)
	}

	// Zero-length series: SINK.Distance defines the pair distance as 1.
	zl := [][]float64{{}, {}}
	ze := NewGramEngine(SINK{Gamma: 5}, zl)
	rows := [][]float64{make([]float64, 2), make([]float64, 2)}
	ze.FillDistances(rows)
	want := SINK{Gamma: 5}.Distance(nil, nil)
	for i := range rows {
		for j := range rows[i] {
			if !sameValue(rows[i][j], want) {
				t.Fatalf("zero-length [%d][%d] = %v, want %v", i, j, rows[i][j], want)
			}
		}
	}
}

func TestGramEngineRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged input")
		}
	}()
	NewGramEngine(SINK{Gamma: 5}, [][]float64{{1, 2}, {3}})
}

func TestSINKSelfMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	series := gramCorpus(rng, 11, 16)
	s := SINK{Gamma: 7}
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	if !s.SelfMatrix(series, rows) {
		t.Fatal("SelfMatrix declined equal-length input")
	}
	want := naiveDistanceMatrix(s, series)
	for i := range want {
		for j := range want[i] {
			if !sameValue(rows[i][j], want[i][j]) {
				t.Fatalf("SelfMatrix[%d][%d] = %v, want %v", i, j, rows[i][j], want[i][j])
			}
		}
	}
	if s.SelfMatrix([][]float64{{1, 2}, {3}}, rows) {
		t.Fatal("SelfMatrix must decline ragged input")
	}
	if s.SelfMatrix(nil, nil) {
		t.Fatal("SelfMatrix must decline the empty set")
	}
	var _ measure.SelfMatrixer = s
}

// TestGramEngineSteadyStateAllocs pins the pooled-scratch claim: after the
// first fill sizes the arena, per-pair tile work allocates nothing.
func TestGramEngineSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	series := make([][]float64, 20)
	for i := range series {
		series[i] = randSeries(rng, 32)
	}
	e := NewGramEngine(SINK{Gamma: 5}, series)
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	e.FillDistances(rows) // warm the arena
	sc := &e.scratch[0]
	if n := testing.AllocsPerRun(20, func() { e.pairDistance(3, 7, sc) }); n != 0 {
		t.Errorf("pairDistance allocates %v per run", n)
	}
	if runtime.NumCPU() == 1 {
		// Serial dispatch: a warm fill allocates only the one dispatch
		// closure, independent of the pair count. (With real parallelism
		// goroutine startup allocates too, so the per-pair assertion above
		// carries the 0 allocs/op claim.)
		if n := testing.AllocsPerRun(5, func() { e.FillDistances(rows) }); n > 1 {
			t.Errorf("warm FillDistances allocates %v per run, want <= 1", n)
		}
	}
}

// benchSeries is the acceptance-criteria synthetic train set: 200 series
// of length 512.
func benchSeries() [][]float64 {
	rng := rand.New(rand.NewSource(27))
	series := make([][]float64, 200)
	for i := range series {
		series[i] = randSeries(rng, 512)
	}
	return series
}

// BenchmarkGramEngine vs BenchmarkGramNaive is the acceptance benchmark
// for the batched Gram fill (recorded in BENCH_spectral.json): the engine
// pays one spectrum per series and one inverse FFT + one sumExp per pair,
// the naive per-pair build re-prepares both series for every entry.
func BenchmarkGramEngine(b *testing.B) {
	series := benchSeries()
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	s := SINK{Gamma: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewGramEngine(s, series).FillDistances(rows)
	}
}

// BenchmarkGramNaive is the per-pair SINK Gram build the engine replaces:
// SINK.Distance per cell, re-deriving spectra, norms, and self-kernels
// for every pair (the "per-pair FFTs for every Gram entry" baseline).
func BenchmarkGramNaive(b *testing.B) {
	series := benchSeries()
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	s := SINK{Gamma: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := range series {
			for c := range series {
				rows[r][c] = s.Distance(series[r], series[c])
			}
		}
	}
}

// BenchmarkGramPrepared is the intermediate baseline: per-series
// preparation hoisted (the old eval.Matrix Stateful path) but each pair
// still allocating its cross-correlation buffers serially.
func BenchmarkGramPrepared(b *testing.B) {
	series := benchSeries()
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	s := SINK{Gamma: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prep := make([]any, len(series))
		for r, x := range series {
			prep[r] = s.Prepare(x)
		}
		for r := range series {
			for c := range series {
				rows[r][c] = s.PreparedDistance(prep[r], prep[c])
			}
		}
	}
}
