package kernel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/measure"
)

func randSeries(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestRBFIdentity(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(1)), 30)
	if d := (RBF{Gamma: 1}).Distance(x, x); d != 0 {
		t.Fatalf("RBF(x,x) = %g", d)
	}
}

func TestRBFRangeAndMonotonicity(t *testing.T) {
	x := []float64{0, 0, 0}
	near := []float64{0.1, 0, 0}
	far := []float64{5, 5, 5}
	r := RBF{Gamma: 0.5}
	dn, df := r.Distance(x, near), r.Distance(x, far)
	if dn <= 0 || dn >= df || df > 1 {
		t.Fatalf("RBF ordering wrong: near=%g far=%g", dn, df)
	}
}

func TestRBFGammaEffect(t *testing.T) {
	x := []float64{0, 0}
	y := []float64{1, 0}
	if (RBF{Gamma: 0.01}).Distance(x, y) >= (RBF{Gamma: 10}).Distance(x, y) {
		t.Fatal("larger gamma must increase the distance of a fixed pair")
	}
}

func TestSINKIdentityIsZero(t *testing.T) {
	x := dataset.ZNormalize(randSeries(rand.New(rand.NewSource(2)), 50))
	d := SINK{Gamma: 5}.Distance(x, x)
	if math.Abs(d) > 1e-9 {
		t.Fatalf("SINK(x,x) = %g, want 0", d)
	}
}

func TestSINKShiftInvariance(t *testing.T) {
	// Like NCCc, SINK should see a shifted bump as very similar.
	m := 128
	x := make([]float64, m)
	for i := 40; i < 60; i++ {
		x[i] = 1
	}
	shifted := make([]float64, m)
	copy(shifted[20:], x[:m-20])
	zx, zs := dataset.ZNormalize(x), dataset.ZNormalize(shifted)
	s := SINK{Gamma: 10}
	dShift := s.Distance(zx, zs)
	rng := rand.New(rand.NewSource(3))
	dRand := s.Distance(zx, dataset.ZNormalize(randSeries(rng, m)))
	if dShift >= dRand {
		t.Fatalf("SINK shifted %g should be < random %g", dShift, dRand)
	}
}

func TestSINKPreparedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randSeries(rng, 40)
	y := randSeries(rng, 40)
	s := SINK{Gamma: 3}
	want := s.Distance(x, y)
	got := s.PreparedDistance(s.Prepare(x), s.Prepare(y))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("prepared %g != direct %g", got, want)
	}
}

func TestSINKSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randSeries(rng, 30)
	y := randSeries(rng, 30)
	s := SINK{Gamma: 5}
	d1, d2 := s.Distance(x, y), s.Distance(y, x)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("SINK not symmetric: %g vs %g", d1, d2)
	}
}

func TestSINKZeroSeries(t *testing.T) {
	zero := make([]float64, 16)
	x := randSeries(rand.New(rand.NewSource(6)), 16)
	if d := (SINK{Gamma: 5}).Distance(x, zero); math.IsNaN(d) {
		t.Fatal("SINK with zero series must be defined")
	}
}

func TestGAKIdentityIsZero(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(7)), 30)
	d := GAK{Sigma: 1}.Distance(x, x)
	if math.Abs(d) > 1e-9 {
		t.Fatalf("GAK(x,x) = %g, want 0", d)
	}
}

func TestGAKNonNegativeNormalized(t *testing.T) {
	// Normalized log-kernel distance is >= 0 (Cauchy-Schwarz for kernels).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		return GAK{Sigma: 1}.Distance(x, y) >= -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGAKSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randSeries(rng, 25)
	y := randSeries(rng, 25)
	g := GAK{Sigma: 0.5}
	d1, d2 := g.Distance(x, y), g.Distance(y, x)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("GAK not symmetric: %g vs %g", d1, d2)
	}
}

func TestGAKNoUnderflowOnLongSeries(t *testing.T) {
	// The log-space recursion must stay finite where the naive
	// probability-space DP would underflow to zero.
	rng := rand.New(rand.NewSource(9))
	x := randSeries(rng, 512)
	y := randSeries(rng, 512)
	d := GAK{Sigma: 0.5}.Distance(x, y)
	if math.IsNaN(d) || math.IsInf(d, 0) {
		t.Fatalf("GAK on long series = %g", d)
	}
}

func TestGAKRanksAlignedCloser(t *testing.T) {
	m := 64
	base := make([]float64, m)
	for i := range base {
		base[i] = math.Sin(2 * math.Pi * float64(i) / 16)
	}
	noisy := make([]float64, m)
	rng := rand.New(rand.NewSource(10))
	for i := range noisy {
		noisy[i] = base[i] + 0.1*rng.NormFloat64()
	}
	random := randSeries(rng, m)
	g := GAK{Sigma: 1}
	if g.Distance(base, noisy) >= g.Distance(base, random) {
		t.Fatal("GAK must rank the noisy copy closer than noise")
	}
}

func TestGAKPreparedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := randSeries(rng, 30)
	y := randSeries(rng, 30)
	g := GAK{Sigma: 1}
	want := g.Distance(x, y)
	got := g.PreparedDistance(g.Prepare(x), g.Prepare(y))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("prepared %g != direct %g", got, want)
	}
}

func TestLogSumExp3(t *testing.T) {
	got := logSumExp3(math.Log(1), math.Log(2), math.Log(3))
	if math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("logSumExp3 = %g, want log(6)", got)
	}
	// All -inf stays -inf.
	ninf := math.Inf(-1)
	if v := logSumExp3(ninf, ninf, ninf); !math.IsInf(v, -1) {
		t.Fatalf("logSumExp3(-inf...) = %g", v)
	}
	// Huge values do not overflow.
	if v := logSumExp3(1000, 1000, 1000); math.IsInf(v, 0) {
		t.Fatal("logSumExp3 overflowed")
	}
}

func TestKDTWIdentityIsZero(t *testing.T) {
	x := randSeries(rand.New(rand.NewSource(12)), 30)
	d := KDTW{Gamma: 0.125}.Distance(x, x)
	if math.Abs(d) > 1e-9 {
		t.Fatalf("KDTW(x,x) = %g, want 0", d)
	}
}

func TestKDTWSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randSeries(rng, 25)
	y := randSeries(rng, 25)
	k := KDTW{Gamma: 0.125}
	d1, d2 := k.Distance(x, y), k.Distance(y, x)
	if math.Abs(d1-d2) > 1e-9 {
		t.Fatalf("KDTW not symmetric: %g vs %g", d1, d2)
	}
}

func TestKDTWRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(40)
		x := randSeries(rng, n)
		y := randSeries(rng, n)
		d := KDTW{Gamma: 0.125}.Distance(x, y)
		// Normalized kernel distance lies in [0, 1] up to degenerate cases
		// mapped to exactly 1.
		return d >= -1e-9 && d <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestKDTWRanksWarpedCloser(t *testing.T) {
	m := 64
	x := make([]float64, m)
	warped := make([]float64, m)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
		w := float64(i) + 3*math.Sin(2*math.Pi*float64(i)/float64(m))
		warped[i] = math.Sin(2 * math.Pi * w / 32)
	}
	rng := rand.New(rand.NewSource(14))
	random := randSeries(rng, m)
	k := KDTW{Gamma: 1}
	if k.Distance(x, warped) >= k.Distance(x, random) {
		t.Fatal("KDTW must rank the warped copy closer than noise")
	}
}

func TestKDTWPreparedMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := randSeries(rng, 30)
	y := randSeries(rng, 30)
	k := KDTW{Gamma: 0.5}
	want := k.Distance(x, y)
	got := k.PreparedDistance(k.Prepare(x), k.Prepare(y))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("prepared %g != direct %g", got, want)
	}
}

func TestAllFourKernels(t *testing.T) {
	all := All()
	if len(all) != 4 {
		t.Fatalf("All() = %d, want 4", len(all))
	}
	rng := rand.New(rand.NewSource(16))
	x := randSeries(rng, 20)
	y := randSeries(rng, 20)
	seen := map[string]bool{}
	for _, m := range all {
		if seen[m.Name()] {
			t.Errorf("duplicate %s", m.Name())
		}
		seen[m.Name()] = true
		if d := m.Distance(x, y); math.IsNaN(d) {
			t.Errorf("%s returned NaN", m.Name())
		}
		if m.Distance(x, x) > m.Distance(x, y)+1e-9 {
			t.Errorf("%s: d(x,x) > d(x,y)", m.Name())
		}
	}
}

func TestKernelsImplementStateful(t *testing.T) {
	// SINK, GAK, and KDTW carry per-series state; RBF does not need it.
	for _, m := range []measure.Measure{SINK{Gamma: 5}, GAK{Sigma: 1}, KDTW{Gamma: 0.125}} {
		if _, ok := m.(measure.Stateful); !ok {
			t.Errorf("%s must implement measure.Stateful", m.Name())
		}
	}
}

func BenchmarkSINK(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	x := randSeries(rng, 256)
	y := randSeries(rng, 256)
	s := SINK{Gamma: 5}
	px, py := s.Prepare(x), s.Prepare(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PreparedDistance(px, py)
	}
}

func BenchmarkGAK(b *testing.B) {
	rng := rand.New(rand.NewSource(18))
	x := randSeries(rng, 128)
	y := randSeries(rng, 128)
	g := GAK{Sigma: 1}
	px, py := g.Prepare(x), g.Prepare(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.PreparedDistance(px, py)
	}
}

func BenchmarkKDTW(b *testing.B) {
	rng := rand.New(rand.NewSource(19))
	x := randSeries(rng, 128)
	y := randSeries(rng, 128)
	k := KDTW{Gamma: 0.125}
	px, py := k.Prepare(x), k.Prepare(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.PreparedDistance(px, py)
	}
}

// gakNaiveProbSpace is the probability-space GAK recursion, used only to
// demonstrate why the production implementation works in log space.
func gakNaiveProbSpace(x, y []float64, sigma float64) float64 {
	m := len(x)
	twoSigmaSq := 2 * sigma * sigma
	localK := func(a, b float64) float64 {
		d := a - b
		e := d * d / twoSigmaSq
		h := math.Exp(-e)
		return h / (2 - h)
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	prev[0] = 1
	for i := 1; i <= m; i++ {
		cur[0] = 0
		for j := 1; j <= m; j++ {
			cur[j] = (prev[j] + cur[j-1] + prev[j-1]) * localK(x[i-1], y[j-1])
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func TestAblationGAKLogSpaceVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	// Short series: both implementations agree (log of naive == logK).
	x := randSeries(rng, 20)
	y := randSeries(rng, 20)
	g := GAK{Sigma: 1}
	naive := gakNaiveProbSpace(x, y, 1)
	if naive <= 0 {
		t.Fatalf("naive GAK unexpectedly non-positive on short series: %g", naive)
	}
	logNaive := math.Log(naive)
	logFast := g.logK(x, y)
	if math.Abs(logNaive-logFast) > 1e-6*(1+math.Abs(logNaive)) {
		t.Fatalf("log-space %g != log(naive) %g", logFast, logNaive)
	}
	// Long series: the probability-space DP underflows to zero while the
	// log-space recursion stays finite — the reason for the design choice.
	xl := randSeries(rng, 1500)
	yl := randSeries(rng, 1500)
	naiveLong := gakNaiveProbSpace(xl, yl, 0.5)
	if naiveLong != 0 {
		t.Fatalf("naive DP expected to underflow at length 1500, got %g", naiveLong)
	}
	if v := g.logK(xl, yl); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("log-space GAK not finite on long series: %g", v)
	}
}

// TestSINKGridStateBitwise checks the measure.GridStateful contract for
// SINK: for every gamma in the Table 4 sweep, candidate state derived from
// shared grid state must produce bitwise-identical distances to the plain
// Prepare path — the property the grid tuning engine's exactness rests on.
func TestSINKGridStateBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x := randSeries(rng, 57)
	y := randSeries(rng, 57)
	gx := SINK{}.GridPrepare(x)
	gy := SINK{}.GridPrepare(y)
	for gamma := 1.0; gamma <= 20; gamma++ {
		s := SINK{Gamma: gamma}
		direct := s.PreparedDistance(s.Prepare(x), s.Prepare(y))
		shared := s.PreparedDistance(s.CandidateState(gx), s.CandidateState(gy))
		if math.Float64bits(direct) != math.Float64bits(shared) {
			t.Fatalf("gamma %g: direct %v shared %v not bitwise equal", gamma, direct, shared)
		}
		if !s.SharesPreparation(SINK{Gamma: gamma + 1}) {
			t.Fatalf("gamma %g: must share preparation with other SINK gammas", gamma)
		}
		if s.SharesPreparation(RBF{Gamma: gamma}) {
			t.Fatalf("gamma %g: must not share preparation with RBF", gamma)
		}
	}
}
