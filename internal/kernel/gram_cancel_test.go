package kernel

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func cancelSeries(n, m int) [][]float64 {
	rng := rand.New(rand.NewSource(31))
	series := make([][]float64, n)
	for i := range series {
		series[i] = randSeries(rng, m)
	}
	return series
}

func TestNewGramEngineCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e, err := NewGramEngineCtx(ctx, SINK{Gamma: 5}, cancelSeries(8, 32))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if e != nil {
		t.Error("a cancelled construction must not return a usable engine")
	}
}

func TestFillDistancesCtxPreCancelled(t *testing.T) {
	series := cancelSeries(8, 32)
	e := NewGramEngine(SINK{Gamma: 5}, series)
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.FillDistancesCtx(ctx, rows); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFillDistancesCtxMidFillCancel cancels a large fill shortly after it
// starts. On a machine fast enough to finish first the test skips; when the
// cancellation lands, the error contract must hold.
func TestFillDistancesCtxMidFillCancel(t *testing.T) {
	series := cancelSeries(96, 256)
	e := NewGramEngine(SINK{Gamma: 5}, series)
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	err := e.FillDistancesCtx(ctx, rows)
	if err == nil {
		t.Skip("fill completed before the cancellation landed")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestFillDistancesCtxUncancelledBitwise pins the wrapper contract: an
// uncancelled ctx fill is bit-identical to the plain fill.
func TestFillDistancesCtxUncancelledBitwise(t *testing.T) {
	series := cancelSeries(14, 48)
	e := NewGramEngine(SINK{Gamma: 5}, series)
	n := len(series)
	want := make([][]float64, n)
	got := make([][]float64, n)
	for i := 0; i < n; i++ {
		want[i] = make([]float64, n)
		got[i] = make([]float64, n)
	}
	e.FillDistances(want)
	if err := e.FillDistancesCtx(context.Background(), got); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if got[i][j] != want[i][j] {
				t.Fatalf("cell (%d,%d): ctx %v differs from plain %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestSelfMatrixCtxPreCancelled pins the ContextSelfMatrixer contract SINK
// exposes to the evaluation layer.
func TestSelfMatrixCtxPreCancelled(t *testing.T) {
	series := cancelSeries(8, 32)
	rows := make([][]float64, len(series))
	for i := range rows {
		rows[i] = make([]float64, len(series))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (SINK{Gamma: 5}).SelfMatrixCtx(ctx, series, rows); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
