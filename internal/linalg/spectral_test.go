package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// mulNaive is the pre-blocking ikj triple loop, kept verbatim as the
// bitwise reference for MulTo: blocking must not change the per-element
// accumulation order.
func mulNaive(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulMatchesNaiveBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Shapes straddling the 128-block edges so multiple k/j blocks run.
	shapes := [][3]int{{3, 5, 4}, {17, 31, 23}, {128, 128, 128}, {130, 257, 129}, {1, 300, 1}}
	for _, s := range shapes {
		a := randMatrix(rng, s[0], s[1])
		b := randMatrix(rng, s[1], s[2])
		// Sprinkle zeros so the zero-skip path is exercised too.
		for i := 0; i < len(a.Data); i += 7 {
			a.Data[i] = 0
		}
		got := Mul(a, b)
		want := mulNaive(a, b)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] && !(math.IsNaN(got.Data[i]) && math.IsNaN(want.Data[i])) {
				t.Fatalf("shape %v: blocked Mul differs at flat index %d: %v vs %v",
					s, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestMulToOverwritesDst(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	dst := NewMatrix(2, 2)
	for i := range dst.Data {
		dst.Data[i] = 99 // stale garbage MulTo must clear
	}
	MulTo(dst, a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if dst.At(i, j) != want[i][j] {
				t.Fatalf("dst[%d][%d] = %g, want %g", i, j, dst.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulToShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulTo(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(3, 3))
}

func TestMulVecToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 13, 29)
	v := make([]float64, 29)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	want := m.MulVec(v)
	dst := make([]float64, 13)
	m.MulVecTo(dst, v)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecTo[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
}

func TestTransposeToMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, s := range [][2]int{{1, 1}, {3, 5}, {32, 32}, {33, 31}, {100, 65}} {
		m := randMatrix(rng, s[0], s[1])
		want := NewMatrix(s[1], s[0])
		for i := 0; i < s[0]; i++ {
			for j := 0; j < s[1]; j++ {
				want.Set(j, i, m.At(i, j))
			}
		}
		got := m.Transpose()
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("shape %v: Transpose differs at flat index %d", s, i)
			}
		}
	}
}

func TestSymRankKMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, rows := range []int{1, 5, 32, 33, 70} {
		a := randMatrix(rng, rows, 17)
		got := SymRankK(a)
		want := Mul(a, a.Transpose())
		for i := 0; i < rows; i++ {
			for j := 0; j < rows; j++ {
				if math.Abs(got.At(i, j)-want.At(i, j)) > 1e-12 {
					t.Fatalf("rows=%d: SymRankK[%d][%d] = %v, want %v",
						rows, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
		if !got.IsSymmetric(0) {
			t.Fatalf("rows=%d: SymRankK result not exactly symmetric", rows)
		}
	}
}

// TestEigenSymNonFiniteInput is the regression test for the silent-spin
// bug: the old Jacobi loop churned through all maxSweeps on NaN input and
// returned garbage. Both solvers must now short-circuit to the defined
// degenerate result — all-NaN eigenvalues with the identity basis.
func TestEigenSymNonFiniteInput(t *testing.T) {
	solvers := map[string]func(*Matrix) ([]float64, *Matrix){
		"ql":     EigenSym,
		"jacobi": EigenSymJacobi,
	}
	inputs := map[string]float64{"nan": math.NaN(), "+inf": math.Inf(1), "-inf": math.Inf(-1)}
	for sName, solve := range solvers {
		for iName, bad := range inputs {
			a := FromRows([][]float64{{1, 2, 0}, {2, 5, bad}, {0, bad, 3}})
			vals, vecs := solve(a)
			for i, v := range vals {
				if !math.IsNaN(v) {
					t.Errorf("%s/%s: vals[%d] = %g, want NaN", sName, iName, i, v)
				}
			}
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if vecs.At(i, j) != want {
						t.Errorf("%s/%s: vectors[%d][%d] = %g, want identity",
							sName, iName, i, j, vecs.At(i, j))
					}
				}
			}
		}
	}
}

func TestEigenSymMatchesJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		a := randSymmetric(rng, n)
		qlVals, _ := EigenSym(a)
		jVals, _ := EigenSymJacobi(a)
		// Scale the comparison by the spectral magnitude.
		scale := math.Max(math.Abs(qlVals[0]), math.Abs(qlVals[n-1]))
		if scale < 1 {
			scale = 1
		}
		for i := range qlVals {
			if math.Abs(qlVals[i]-jVals[i]) > 1e-9*scale {
				t.Fatalf("trial %d n=%d: vals[%d]: ql %v vs jacobi %v", trial, n, i, qlVals[i], jVals[i])
			}
		}
	}
}

func TestEigenSymJacobiReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 12
	a := randSymmetric(rng, n)
	vals, v := EigenSymJacobi(a)
	d := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		d.Set(i, i, vals[i])
	}
	rec := Mul(Mul(v, d), v.Transpose())
	for i := range rec.Data {
		if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8 {
			t.Fatalf("Jacobi reconstruction off at flat index %d: %v vs %v", i, rec.Data[i], a.Data[i])
		}
	}
}

func TestEigenSymRepeatedEigenvalues(t *testing.T) {
	// A rank-1 perturbation of the identity has a single large eigenvalue
	// and an (n-1)-fold repeated one — a classic QL stress case.
	n := 10
	a := Identity(n)
	u := make([]float64, n)
	for i := range u {
		u[i] = 1 / math.Sqrt(float64(n))
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, a.At(i, j)+3*u[i]*u[j])
		}
	}
	vals, v := EigenSym(a)
	if math.Abs(vals[0]-4) > 1e-10 {
		t.Fatalf("vals[0] = %g, want 4", vals[0])
	}
	for i := 1; i < n; i++ {
		if math.Abs(vals[i]-1) > 1e-10 {
			t.Fatalf("vals[%d] = %g, want 1", i, vals[i])
		}
	}
	// Orthonormality must survive the repeated eigenspace.
	vtv := Mul(v.Transpose(), v)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-10 {
				t.Fatalf("V^T V [%d][%d] = %g", i, j, vtv.At(i, j))
			}
		}
	}
}

// TestMatrixHotPathsAllocFree asserts the *To variants allocate nothing —
// the drive-by allocation audit for the embedding fit loops.
func TestMatrixHotPathsAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := randMatrix(rng, 40, 40)
	b := randMatrix(rng, 40, 40)
	dst := NewMatrix(40, 40)
	tr := NewMatrix(40, 40)
	v := make([]float64, 40)
	out := make([]float64, 40)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	if n := testing.AllocsPerRun(10, func() { MulTo(dst, a, b) }); n != 0 {
		t.Errorf("MulTo allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(10, func() { a.TransposeTo(tr) }); n != 0 {
		t.Errorf("TransposeTo allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(10, func() { a.MulVecTo(out, v) }); n != 0 {
		t.Errorf("MulVecTo allocates %v per run", n)
	}
}

func benchSymmetric(n int) *Matrix {
	rng := rand.New(rand.NewSource(99))
	return randSymmetric(rng, n)
}

// BenchmarkEigenSym vs BenchmarkEigenSymJacobi at n=200 is the acceptance
// benchmark for the tridiagonal QL rewrite (recorded in BENCH_spectral.json).
func BenchmarkEigenSym(b *testing.B) {
	a := benchSymmetric(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSym(a)
	}
}

func BenchmarkEigenSymJacobi(b *testing.B) {
	a := benchSymmetric(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EigenSymJacobi(a)
	}
}

func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	x := randMatrix(rng, 200, 200)
	y := randMatrix(rng, 200, 200)
	dst := NewMatrix(200, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulTo(dst, x, y)
	}
}

func BenchmarkSymRankK(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 200, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SymRankK(a)
	}
}
