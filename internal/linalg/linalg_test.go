package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("At/Set mismatch")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must copy")
	}
}

func TestFromRowsAndTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	if tr.At(2, 1) != 6 || tr.At(0, 0) != 1 || tr.At(1, 0) != 2 {
		t.Fatal("transpose values wrong")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %g, want %g", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 0, 2}, {0, 3, 0}})
	got := m.MulVec([]float64{1, 2, 3})
	if got[0] != 7 || got[1] != 6 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestDotAndNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if math.Abs(Norm2([]float64{3, 4})-5) > 1e-12 {
		t.Fatal("Norm2 wrong")
	}
}

func TestIsSymmetric(t *testing.T) {
	s := FromRows([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Fatal("should be symmetric")
	}
	a := FromRows([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Fatal("should not be symmetric")
	}
	if NewMatrix(2, 3).IsSymmetric(0) {
		t.Fatal("non-square cannot be symmetric")
	}
}

func randSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenSymDiagonal(t *testing.T) {
	d := FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 2}})
	vals, vecs := EigenSym(d)
	want := []float64{3, 2, -1}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-10 {
			t.Errorf("vals[%d] = %g, want %g", i, vals[i], w)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit vectors.
	for c := 0; c < 3; c++ {
		var nrm float64
		for r := 0; r < 3; r++ {
			nrm += vecs.At(r, c) * vecs.At(r, c)
		}
		if math.Abs(nrm-1) > 1e-10 {
			t.Errorf("eigenvector %d not unit norm: %g", c, nrm)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, _ := EigenSym(a)
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("vals = %v, want [3 1]", vals)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		a := randSymmetric(rng, n)
		vals, v := EigenSym(a)
		// Reconstruct V diag(vals) V^T and compare.
		d := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			d.Set(i, i, vals[i])
		}
		rec := Mul(Mul(v, d), v.Transpose())
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(rec.At(i, j)-a.At(i, j)) > 1e-8 {
					return false
				}
			}
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEigenSymOrthonormalVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randSymmetric(rng, 20)
	_, v := EigenSym(a)
	vtv := Mul(v.Transpose(), v)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			want := 0.0
			if i == j {
				want = 1.0
			}
			if math.Abs(vtv.At(i, j)-want) > 1e-8 {
				t.Fatalf("V^T V [%d][%d] = %g, want %g", i, j, vtv.At(i, j), want)
			}
		}
	}
}

func TestEigenSymPSDGramMatrix(t *testing.T) {
	// Gram matrices are positive semi-definite: eigenvalues >= 0.
	rng := rand.New(rand.NewSource(12))
	b := NewMatrix(15, 7)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	g := Mul(b, b.Transpose()) // 15x15, rank <= 7
	vals, _ := EigenSym(g)
	for i, v := range vals {
		if v < -1e-8 {
			t.Errorf("PSD matrix has negative eigenvalue vals[%d] = %g", i, v)
		}
	}
	// Rank deficiency: eigenvalues beyond index 6 should be ~0.
	for i := 7; i < 15; i++ {
		if math.Abs(vals[i]) > 1e-8 {
			t.Errorf("expected zero eigenvalue at %d, got %g", i, vals[i])
		}
	}
}

func TestEigenSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EigenSym(NewMatrix(2, 3))
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if id.At(i, j) != want {
				t.Fatalf("Identity[%d][%d] = %g", i, j, id.At(i, j))
			}
		}
	}
}
