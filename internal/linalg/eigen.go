package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of the symmetric matrix a
// using the cyclic Jacobi method. It returns the eigenvalues in descending
// order and a matrix whose COLUMNS are the corresponding orthonormal
// eigenvectors, so that a == V * diag(values) * V^T.
//
// The input is not modified. EigenSym panics if a is not square; symmetry is
// assumed (only the upper triangle drives the rotations, applied
// symmetrically). The Jacobi method is O(n^3) per sweep and converges in a
// handful of sweeps for the moderate sizes (<= a few hundred) used by the
// embedding measures.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: EigenSym on non-square %dx%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)
	if n == 0 {
		return nil, v
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation G(p, q, theta) on both sides: w = G^T w G.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sorted := make([]float64, n)
	vec := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vec.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sorted, vec
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
