package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of the symmetric matrix a
// by Householder tridiagonalization followed by the implicit-shift QL
// iteration (the classic tred2/tql2 pair of EISPACK). It returns the
// eigenvalues in descending order and a matrix whose COLUMNS are the
// corresponding orthonormal eigenvectors, so that a == V * diag(values) * V^T.
//
// The input is not modified. EigenSym panics if a is not square; symmetry
// is assumed. The tridiagonal route costs a fixed ~(7/3)n^3 flops where
// the cyclic Jacobi method (kept as EigenSymJacobi, the differential
// oracle) pays ~3n^3 per sweep over many sweeps, so it is the solver every
// embedding fit runs on.
//
// Non-finite entries (NaN/Inf) can never converge under either rotation
// scheme — the off-diagonal mass a sweep tries to annihilate stays NaN —
// so they are rejected up front: the result is the defined degenerate
// decomposition of all-NaN eigenvalues with the identity basis, consistent
// with the library's degenerate-input policy (DESIGN.md §10).
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: EigenSym on non-square %dx%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	if n == 0 {
		return nil, Identity(0)
	}
	if !allFinite(a.Data) {
		return nonFiniteEigen(n)
	}
	v := a.Clone()
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	tql2(v, d, e)
	return sortEigenDesc(d, v)
}

// EigenSymJacobi is the cyclic Jacobi eigensolver with the same contract as
// EigenSym (descending eigenvalues, eigenvectors in columns, non-finite
// inputs mapped to the all-NaN/identity degenerate result). It converges in
// a handful of O(n^3) sweeps and serves as the independent cross-check
// oracle for the QL path (`make oracle`); production code calls EigenSym.
func EigenSymJacobi(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic(fmt.Sprintf("linalg: EigenSymJacobi on non-square %dx%d matrix", a.Rows, a.Cols))
	}
	n := a.Rows
	if n == 0 {
		return nil, Identity(0)
	}
	if !allFinite(a.Data) {
		return nonFiniteEigen(n)
	}
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22*float64(n*n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation G(p, q, theta) on both sides: w = G^T w G.
				for k := 0; k < n; k++ {
					wkp := w.At(k, p)
					wkq := w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk := w.At(p, k)
					wqk := w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	values = make([]float64, n)
	for i := range values {
		values[i] = w.At(i, i)
	}
	return sortEigenDesc(values, v)
}

// allFinite reports whether every entry is finite (no NaN, no Inf).
func allFinite(xs []float64) bool {
	for _, v := range xs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// nonFiniteEigen is the degenerate decomposition returned for non-finite
// input: every eigenvalue NaN, the identity as the (trivially orthonormal)
// basis. Downstream spectrum filters of the form `vals[j] > threshold`
// reject NaN, so degenerate fits fall through to empty projections instead
// of propagating garbage rotations.
func nonFiniteEigen(n int) ([]float64, *Matrix) {
	values := make([]float64, n)
	for i := range values {
		values[i] = math.NaN()
	}
	return values, Identity(n)
}

// sortEigenDesc reorders the eigenpairs (values[i], column i of v) by
// descending eigenvalue into freshly allocated results.
func sortEigenDesc(values []float64, v *Matrix) ([]float64, *Matrix) {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sorted := make([]float64, n)
	vec := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vec.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sorted, vec
}

// tred2 reduces the symmetric matrix held in v to tridiagonal form by
// Householder similarity transformations, accumulating the transformations
// in v. On return d holds the diagonal, e the subdiagonal (e[0] unused).
// This is the EISPACK tred2 routine (via the public-domain JAMA
// translation) adapted to the row-major Matrix layout.
func tred2(v *Matrix, d, e []float64) {
	n := v.Rows
	vd := v.Data

	for j := 0; j < n; j++ {
		d[j] = vd[(n-1)*n+j]
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow in the norm of the column slice.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = vd[(i-1)*n+j]
				vd[i*n+j] = 0
				vd[j*n+i] = 0
			}
		} else {
			// Generate the Householder vector.
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply the similarity transformation to the remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				vd[j*n+i] = f
				g = e[j] + vd[j*n+j]*f
				for k := j + 1; k <= i-1; k++ {
					g += vd[k*n+j] * d[k]
					e[k] += vd[k*n+j] * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					vd[k*n+j] -= f*e[k] + g*d[k]
				}
				d[j] = vd[(i-1)*n+j]
				vd[i*n+j] = 0
			}
		}
		d[i] = h
	}
	// Accumulate the transformations.
	for i := 0; i < n-1; i++ {
		vd[(n-1)*n+i] = vd[i*n+i]
		vd[i*n+i] = 1
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = vd[k*n+i+1] / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += vd[k*n+i+1] * vd[k*n+j]
				}
				for k := 0; k <= i; k++ {
					vd[k*n+j] -= g * d[k]
				}
			}
		}
		for k := 0; k <= i; k++ {
			vd[k*n+i+1] = 0
		}
	}
	for j := 0; j < n; j++ {
		d[j] = vd[(n-1)*n+j]
		vd[(n-1)*n+j] = 0
	}
	vd[(n-1)*n+n-1] = 1
	e[0] = 0
}

// maxQLIterations bounds the implicit-shift iterations per eigenvalue; the
// Wilkinson shift converges cubically (2-3 iterations in practice), so the
// cap only guards against a stalled pathological spectrum.
const maxQLIterations = 64

// tql2 diagonalizes the symmetric tridiagonal matrix (d, e) produced by
// tred2 with the implicit-shift QL algorithm, updating the accumulated
// transformations in v so its columns become the eigenvectors of the
// original matrix. Eigenvalues are left unordered in d; sortEigenDesc
// orders them. This is the EISPACK tql2 routine (JAMA translation).
func tql2(v *Matrix, d, e []float64) {
	n := v.Rows
	vd := v.Data
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f, tst1 := 0.0, 0.0
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		// Find the first small subdiagonal element; e[n-1] == 0 guarantees
		// the scan terminates before running off the end.
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				// Wilkinson's implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h

				// Implicit QL sweep from m back to l.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Rotate the accumulated eigenvector columns i and i+1.
					for k := 0; k < n; k++ {
						row := vd[k*n:]
						h = row[i+1]
						row[i+1] = s*row[i] + c*h
						row[i] = c*row[i] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 || iter >= maxQLIterations {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}
