// Package linalg provides the small dense linear-algebra kernel needed by
// the embedding measures: a row-major matrix type, basic products, and a
// cyclic Jacobi eigensolver for symmetric matrices (used for the Nyström
// approximation in GRAIL and the landmark MDS in SPIRAL).
package linalg

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
