// Package linalg provides the small dense linear-algebra kernel needed by
// the embedding measures: a row-major matrix type, basic products, and a
// cyclic Jacobi eigensolver for symmetric matrices (used for the Nyström
// approximation in GRAIL and the landmark MDS in SPIRAL).
package linalg

import (
	"fmt"
	"math"

	"repro/internal/par"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows, copying data.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(len(rows), c)
	for i, r := range rows {
		if len(r) != c {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), c))
		}
		copy(m.Data[i*c:(i+1)*c], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// transposeTile is the square tile edge for the blocked transpose: 32x32
// float64 tiles (8 KiB source + 8 KiB destination) fit comfortably in L1,
// so both the row-major reads and the column-major writes stay on cached
// lines instead of striding a full row apart.
const transposeTile = 32

// Transpose returns a new matrix that is the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	m.TransposeTo(t)
	return t
}

// TransposeTo writes the transpose of m into dst, which must already be
// shaped Cols x Rows; it allows reusing a destination across calls in hot
// loops. The copy walks 32x32 tiles so neither side thrashes the cache.
func (m *Matrix) TransposeTo(dst *Matrix) {
	if dst.Rows != m.Cols || dst.Cols != m.Rows {
		panic(fmt.Sprintf("linalg: TransposeTo shape mismatch: dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, m.Cols, m.Rows))
	}
	for ib := 0; ib < m.Rows; ib += transposeTile {
		iMax := ib + transposeTile
		if iMax > m.Rows {
			iMax = m.Rows
		}
		for jb := 0; jb < m.Cols; jb += transposeTile {
			jMax := jb + transposeTile
			if jMax > m.Cols {
				jMax = m.Cols
			}
			for i := ib; i < iMax; i++ {
				row := m.Data[i*m.Cols:]
				for j := jb; j < jMax; j++ {
					dst.Data[j*dst.Cols+i] = row[j]
				}
			}
		}
	}
}

// mulBlockK and mulBlockJ are the cache-block edges of the ikj product:
// a kb x jb panel of b (128x128 float64 = 128 KiB upper bound, resident in
// L2) is streamed against a column strip of a, so each b element loaded
// from memory is reused across all rows of a instead of once.
const (
	mulBlockK = 128
	mulBlockJ = 128
)

// Mul returns the matrix product a*b.
func Mul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	MulTo(out, a, b)
	return out
}

// MulTo computes the matrix product a*b into dst (shaped a.Rows x b.Cols),
// overwriting it. The kernel is the classic ikj accumulation with cache
// blocking over k and j; for every output element the k-contributions are
// still added in increasing-k order (blocks are visited in order, and k
// runs forward inside each block), so the result is bitwise identical to
// the unblocked triple loop.
func MulTo(dst, a, b *Matrix) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	if dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MulTo shape mismatch: dst %dx%d, want %dx%d",
			dst.Rows, dst.Cols, a.Rows, b.Cols))
	}
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for jb := 0; jb < b.Cols; jb += mulBlockJ {
		jMax := jb + mulBlockJ
		if jMax > b.Cols {
			jMax = b.Cols
		}
		for kb := 0; kb < a.Cols; kb += mulBlockK {
			kMax := kb + mulBlockK
			if kMax > a.Cols {
				kMax = a.Cols
			}
			for i := 0; i < a.Rows; i++ {
				arow := a.Data[i*a.Cols:]
				orow := dst.Data[i*dst.Cols:]
				for k := kb; k < kMax; k++ {
					av := arow[k]
					if av == 0 {
						continue
					}
					brow := b.Data[k*b.Cols:]
					for j := jb; j < jMax; j++ {
						orow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// MulVec returns the matrix-vector product m*v.
func (m *Matrix) MulVec(v []float64) []float64 {
	out := make([]float64, m.Rows)
	m.MulVecTo(out, v)
	return out
}

// MulVecTo computes m*v into dst (len m.Rows), overwriting it, so repeated
// projections can reuse one output buffer.
func (m *Matrix) MulVecTo(dst, v []float64) {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(v)))
	}
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVecTo dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
}

// symRankKTile is the tile edge for the parallel symmetric rank-k update.
// Tiles above the diagonal are independent units of work; 32 rows of a
// typical landmark matrix keep each unit large enough to amortize dispatch.
const symRankKTile = 32

// SymRankK returns the Gram-style product a * a^T (a.Rows x a.Rows,
// symmetric). Only the upper triangle is computed — in parallel,
// tile-by-tile — and mirrored; entry (i, j) is Dot(row i, row j), the same
// accumulation order as the serial product, so results do not depend on
// the worker count.
func SymRankK(a *Matrix) *Matrix {
	n := a.Rows
	out := NewMatrix(n, n)
	if n == 0 {
		return out
	}
	nt := (n + symRankKTile - 1) / symRankKTile
	// Enumerate upper-triangle tiles (ti <= tj) as a flat work list.
	type tilePair struct{ ti, tj int }
	tiles := make([]tilePair, 0, nt*(nt+1)/2)
	for ti := 0; ti < nt; ti++ {
		for tj := ti; tj < nt; tj++ {
			tiles = append(tiles, tilePair{ti, tj})
		}
	}
	par.For(len(tiles), par.Workers(len(tiles)), func(t int) {
		ti, tj := tiles[t].ti, tiles[t].tj
		iMax := (ti + 1) * symRankKTile
		if iMax > n {
			iMax = n
		}
		jMax := (tj + 1) * symRankKTile
		if jMax > n {
			jMax = n
		}
		for i := ti * symRankKTile; i < iMax; i++ {
			ai := a.Row(i)
			jStart := tj * symRankKTile
			if ti == tj {
				jStart = i
			}
			for j := jStart; j < jMax; j++ {
				v := Dot(ai, a.Row(j))
				out.Data[i*n+j] = v
				// The mirrored element lives in a strictly-lower tile no
				// worker owns, so the write is race-free.
				out.Data[j*n+i] = v
			}
		}
	})
	return out
}

// IsSymmetric reports whether m is square and symmetric within tol.
func (m *Matrix) IsSymmetric(tol float64) bool {
	if m.Rows != m.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}
