package repro_test

import (
	"fmt"
	"math"

	repro "repro"
)

// ExampleSBD shows the defining property of the sliding measures: a
// shifted copy of a pattern is recognized as nearly identical, where the
// Euclidean distance sees it as far.
func ExampleSBD() {
	m := 64
	x := make([]float64, m)
	for i := 20; i < 30; i++ {
		x[i] = 1
	}
	shifted := make([]float64, m)
	copy(shifted[10:], x[:m-10]) // the same bump, 10 steps later

	zx := repro.ZNormalize(x)
	zs := repro.ZNormalize(shifted)
	fmt.Printf("SBD: %.2f\n", repro.SBD().Distance(zx, zs))
	fmt.Printf("ED:  %.2f\n", repro.Euclidean().Distance(zx, zs))
	// Output:
	// SBD: 0.03
	// ED:  12.32
}

// ExampleDTW shows dynamic time warping absorbing a local time distortion
// that the lock-step Euclidean distance pays in full.
func ExampleDTW() {
	m := 64
	x := make([]float64, m)
	warped := make([]float64, m)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 32)
		w := float64(i) + 4*math.Sin(2*math.Pi*float64(i)/float64(m))
		warped[i] = math.Sin(2 * math.Pi * w / 32)
	}
	dtw := repro.DTW(20).Distance(x, warped)
	var sqED float64
	for i := range x {
		d := x[i] - warped[i]
		sqED += d * d
	}
	fmt.Printf("DTW much smaller than squared ED: %v\n", dtw < sqED/10)
	// Output:
	// DTW much smaller than squared ED: true
}

// ExampleWilcoxon runs the paper's pairwise statistical test on two
// accuracy vectors.
func ExampleWilcoxon() {
	measureA := []float64{0.91, 0.85, 0.88, 0.90, 0.87, 0.93, 0.89, 0.86, 0.92, 0.88, 0.90, 0.87}
	measureB := []float64{0.85, 0.80, 0.84, 0.85, 0.80, 0.88, 0.85, 0.80, 0.86, 0.84, 0.85, 0.81}
	r := repro.Wilcoxon(measureA, measureB)
	fmt.Printf("wins=%d ties=%d losses=%d significant=%v\n",
		r.Wins, r.Ties, r.Losses, r.PValue < 0.05)
	// Output:
	// wins=12 ties=0 losses=0 significant=true
}

// ExampleFriedman ranks three measures over five datasets with the
// Friedman/Nemenyi machinery behind the paper's critical-difference
// figures.
func ExampleFriedman() {
	// scores[dataset][measure], higher is better.
	scores := [][]float64{
		{0.9, 0.8, 0.5},
		{0.92, 0.79, 0.55},
		{0.88, 0.82, 0.52},
		{0.91, 0.78, 0.60},
		{0.89, 0.81, 0.51},
	}
	f := repro.Friedman(scores, 0.10)
	fmt.Printf("ranks: %.1f %.1f %.1f\n", f.AvgRanks[0], f.AvgRanks[1], f.AvgRanks[2])
	fmt.Printf("significant: %v\n", f.Significant)
	// Output:
	// ranks: 1.0 2.0 3.0
	// significant: true
}

// ExampleTestAccuracy evaluates one measure on a generated dataset with
// the paper's 1-NN framework.
func ExampleTestAccuracy() {
	d := repro.GenerateDataset(repro.DatasetConfig{
		Name: "docs", Family: repro.FamilyHarmonic, Length: 64,
		NumClasses: 2, TrainSize: 10, TestSize: 10, Seed: 7, NoiseSigma: 0.1,
	})
	acc := repro.TestAccuracy(repro.Euclidean(), d, repro.ZScore())
	fmt.Printf("accuracy in [0,1]: %v\n", acc >= 0 && acc <= 1)
	// Output:
	// accuracy in [0,1]: true
}

// ExampleNewSAX demonstrates the SAX symbolic representation and its
// MINDIST lower bound of the Euclidean distance.
func ExampleNewSAX() {
	s := repro.NewSAX(4, 4)
	x := repro.ZNormalize([]float64{1, 2, 3, 4, 5, 6, 7, 8})
	y := repro.ZNormalize([]float64{8, 7, 6, 5, 4, 3, 2, 1})
	wx, wy := s.Symbolize(x), s.Symbolize(y)
	fmt.Println("word x:", wx)
	fmt.Println("word y:", wy)
	lb := s.MinDist(wx, wy, 8)
	ed := repro.Euclidean().Distance(x, y)
	fmt.Printf("MINDIST <= ED: %v\n", lb <= ed)
	// Output:
	// word x: [0 1 2 3]
	// word y: [3 2 1 0]
	// MINDIST <= ED: true
}

// ExampleMotif finds a planted repeated pattern with the matrix profile.
func ExampleMotif() {
	n := 240
	t := make([]float64, n)
	for i := range t {
		t[i] = math.Sin(float64(i)) * 0.05
	}
	pattern := []float64{0, 1, 3, 1, 0, -1, -3, -1, 0, 2, 4, 2, 0, -2, -4, -2, 0, 1, 2, 1}
	copy(t[40:], pattern)
	copy(t[160:], pattern)
	i, j, _ := repro.Motif(t, len(pattern))
	if i > j {
		i, j = j, i
	}
	fmt.Printf("motif near 40 and 160: %v\n", i >= 35 && i <= 45 && j >= 155 && j <= 165)
	// Output:
	// motif near 40 and 160: true
}

// ExampleKShape clusters shifted copies of two patterns.
func ExampleKShape() {
	m := 48
	var series [][]float64
	for i := 0; i < 12; i++ {
		freq := float64(i%2 + 1)
		shift := (i * 7) % m
		s := make([]float64, m)
		for j := range s {
			s[j] = math.Sin(2 * math.Pi * freq * float64((j+shift)%m) / float64(m))
		}
		series = append(series, repro.ZNormalize(s))
	}
	res := repro.KShapeRestarts(series, repro.KShapeConfig{K: 2, Seed: 1}, 3)
	// Instances alternate classes, so labels must alternate too (up to
	// cluster renaming).
	agree := true
	for i := 2; i < len(res.Labels); i++ {
		if res.Labels[i] != res.Labels[i-2] {
			agree = false
		}
	}
	fmt.Printf("recovered alternating classes: %v\n", agree)
	// Output:
	// recovered alternating classes: true
}
