// End-to-end evaluation study: a miniature of the paper's full pipeline.
// An archive is generated, elastic measures are tuned per dataset by
// leave-one-out (the supervised protocol) and compared against the SBD
// baseline with both statistical tests — the Wilcoxon pairwise comparison
// and the Friedman/Nemenyi ranking rendered as a critical-difference
// diagram (the paper's Figures 5/6, debunking M3 and M4).
package main

import (
	"fmt"

	repro "repro"
)

func main() {
	archive := repro.GenerateArchive(repro.ArchiveOptions{
		Seed: 9, Count: 14, MaxLength: 80, MaxTrain: 14, MaxTest: 20,
	})
	fmt.Printf("archive: %d datasets\n\n", len(archive))

	// Per-dataset accuracies: baseline and three elastic measures under
	// unsupervised (fixed) parameters.
	type method struct {
		name string
		accs []float64
	}
	fixed := []struct {
		name string
		m    repro.Measure
	}{
		{"nccc (SBD)", repro.SBD()},
		{"msm c=0.5", repro.MSM(0.5)},
		{"twe", repro.TWE(1, 0.0001)},
		{"dtw 10%", repro.DTW(10)},
		{"lcss", repro.LCSS(5, 0.2)},
	}
	var methods []method
	for _, f := range fixed {
		accs := make([]float64, len(archive))
		for i, d := range archive {
			accs[i] = repro.TestAccuracy(f.m, d, nil)
		}
		methods = append(methods, method{f.name, accs})
	}

	// Supervised DTW: the Table 4 grid tuned by leave-one-out per dataset.
	supAccs := make([]float64, len(archive))
	for i, d := range archive {
		supAccs[i], _ = repro.SupervisedAccuracy(repro.DTWGrid(), d, nil)
	}
	methods = append(methods, method{"dtw LOOCV", supAccs})

	// Pairwise Wilcoxon against the baseline (methods[0]).
	base := methods[0]
	fmt.Printf("%-12s %-9s %-22s %s\n", "measure", "avg acc", "vs baseline (w/t/l)", "p-value")
	for _, m := range methods {
		var sum float64
		for _, a := range m.accs {
			sum += a
		}
		if m.name == base.name {
			fmt.Printf("%-12s %-9.4f %-22s %s\n", m.name, sum/float64(len(m.accs)), "baseline", "-")
			continue
		}
		w := repro.Wilcoxon(m.accs, base.accs)
		verdict := ""
		if w.PValue < 0.05 && w.WPlus > w.WMinus {
			verdict = " <- significantly better"
		}
		fmt.Printf("%-12s %-9.4f %d/%d/%-16d %.4f%s\n",
			m.name, sum/float64(len(m.accs)), w.Wins, w.Ties, w.Losses, w.PValue, verdict)
	}

	// Friedman + Nemenyi over all methods together.
	scores := make([][]float64, len(archive))
	names := make([]string, len(methods))
	for j, m := range methods {
		names[j] = m.name
		for i, a := range m.accs {
			if scores[i] == nil {
				scores[i] = make([]float64, len(methods))
			}
			scores[i][j] = a
		}
	}
	f := repro.Friedman(scores, 0.10)
	fmt.Printf("\nFriedman chi2=%.3f p=%.4f significant=%v\n", f.ChiSq, f.PValue, f.Significant)
	fmt.Println(repro.CriticalDifferenceDiagram(names, f.AvgRanks, f.CriticalDiff))
}
