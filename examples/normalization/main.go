// Normalization study (the paper's M1): how the choice of preprocessing
// changes which measure wins. Reproduces the spirit of Figure 1 and
// Table 2 on a small archive: the same measures are evaluated under all 8
// normalization methods, showing that z-score is not universally best and
// that some measures only work under MinMax-style scaling.
package main

import (
	"fmt"

	repro "repro"
)

func main() {
	archive := repro.GenerateArchive(repro.ArchiveOptions{
		Seed: 3, Count: 12, MaxLength: 96, MaxTrain: 16, MaxTest: 24,
	})
	fmt.Printf("archive: %d datasets\n\n", len(archive))

	measures := []repro.Measure{
		repro.Euclidean(),
		repro.Lorentzian(),
		repro.Jaccard(), // the paper's example of a measure needing MeanNorm
		repro.Soergel(), // and one needing MinMax
		repro.Emanon4(),
	}
	norms := repro.AllNormalizers()

	// Mean accuracy of every measure x normalization combination.
	fmt.Printf("%-14s", "measure")
	for _, n := range norms {
		fmt.Printf(" %-12s", n.Name())
	}
	fmt.Println()
	best := map[string]string{}
	bestAcc := map[string]float64{}
	for _, m := range measures {
		fmt.Printf("%-14s", m.Name())
		for _, n := range norms {
			var sum float64
			for _, d := range archive {
				sum += repro.TestAccuracy(m, d, n)
			}
			avg := sum / float64(len(archive))
			fmt.Printf(" %-12.4f", avg)
			if avg > bestAcc[m.Name()] {
				bestAcc[m.Name()] = avg
				best[m.Name()] = n.Name()
			}
		}
		fmt.Println()
	}
	fmt.Println("\nbest normalization per measure:")
	for _, m := range measures {
		fmt.Printf("  %-14s -> %s (%.4f)\n", m.Name(), best[m.Name()], bestAcc[m.Name()])
	}
	fmt.Println("\nNote how the ratio-style measures (jaccard, soergel, emanon4) only")
	fmt.Println("work under positive-range transforms (minmax, meannorm, logistic,")
	fmt.Println("tanh) — under z-score their guarded terms blow up to +Inf. This is")
	fmt.Println("exactly why the paper's M1 misconception (\"always z-score\") hid")
	fmt.Println("these measures from the time-series literature for a decade.")
}
