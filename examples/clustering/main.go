// Time-series clustering: one of the headline tasks the paper's
// introduction motivates. A k-medoids (PAM-style) clusterer is run on top
// of interchangeable distance measures, showing how the measure choice —
// not the clustering algorithm — drives quality on misaligned data
// (the insight behind k-Shape's use of the cross-correlation distance).
// Quality is scored with the Adjusted Rand Index against the generator's
// true classes.
package main

import (
	"fmt"
	"math/rand"

	repro "repro"
)

func main() {
	d := repro.GenerateDataset(repro.DatasetConfig{
		Name: "ClusterMe", Family: repro.FamilyHarmonic, Length: 96,
		NumClasses: 4, TrainSize: 80, TestSize: 4, Seed: 17,
		NoiseSigma: 0.25, ShiftFrac: 0.15, AmpJitter: 0.2,
	})
	series := d.Train
	truth := d.TrainLabels
	k := d.NumClasses()
	fmt.Printf("clustering %d series (length %d) into k=%d clusters\n\n", len(series), d.Length(), k)

	measures := []repro.Measure{
		repro.Euclidean(),
		repro.Lorentzian(),
		repro.SBD(),
		repro.DTW(10),
		repro.MSM(0.5),
	}
	fmt.Printf("%-14s %-10s\n", "measure", "ARI")
	for _, m := range measures {
		dm := repro.DistanceMatrix(m, series, series)
		labels := kMedoids(dm, k, 25, 7)
		fmt.Printf("%-14s %-10.4f\n", m.Name(), adjustedRandIndex(labels, truth))
	}
	// The real thing: k-Shape, the SBD-centroid algorithm of Paparrizos &
	// Gravano that the paper credits for reviving sliding measures.
	res := repro.KShapeRestarts(series, repro.KShapeConfig{K: k, Seed: 7}, 5)
	fmt.Printf("%-14s %-10.4f (best of 5 restarts, %d iterations)\n",
		"k-shape", repro.AdjustedRandIndex(res.Labels, truth), res.Iters)

	fmt.Println("\nOn randomly shifted series the alignment-aware measures (SBD, DTW,")
	fmt.Println("MSM) recover the true classes where lock-step measures cannot —")
	fmt.Println("the reason cross-correlation powers state-of-the-art clustering.")
}

// kMedoids is a PAM-style clusterer over a precomputed distance matrix:
// medoids are seeded deterministically, points are assigned to the nearest
// medoid, and each medoid is replaced by the member minimizing the
// within-cluster distance sum until convergence or maxIter.
func kMedoids(dm [][]float64, k, maxIter int, seed int64) []int {
	n := len(dm)
	rng := rand.New(rand.NewSource(seed))
	medoids := rng.Perm(n)[:k]
	labels := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		// Assignment step.
		for i := 0; i < n; i++ {
			best, bestD := 0, dm[i][medoids[0]]
			for c := 1; c < k; c++ {
				if d := dm[i][medoids[c]]; d < bestD {
					best, bestD = c, d
				}
			}
			labels[i] = best
		}
		// Update step: the member with the smallest distance sum becomes
		// the new medoid.
		changed := false
		for c := 0; c < k; c++ {
			bestMember, bestCost := -1, 0.0
			for i := 0; i < n; i++ {
				if labels[i] != c {
					continue
				}
				var cost float64
				for j := 0; j < n; j++ {
					if labels[j] == c {
						cost += dm[i][j]
					}
				}
				if bestMember == -1 || cost < bestCost {
					bestMember, bestCost = i, cost
				}
			}
			if bestMember >= 0 && bestMember != medoids[c] {
				medoids[c] = bestMember
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return labels
}

// adjustedRandIndex scores a clustering against ground-truth labels:
// 1 = identical partitions, ~0 = chance agreement.
func adjustedRandIndex(a, b []int) float64 {
	n := len(a)
	// Contingency table.
	table := map[[2]int]int{}
	rowSum := map[int]int{}
	colSum := map[int]int{}
	for i := 0; i < n; i++ {
		table[[2]int{a[i], b[i]}]++
		rowSum[a[i]]++
		colSum[b[i]]++
	}
	choose2 := func(x int) float64 { return float64(x) * float64(x-1) / 2 }
	var sumCells, sumRows, sumCols float64
	for _, v := range table {
		sumCells += choose2(v)
	}
	for _, v := range rowSum {
		sumRows += choose2(v)
	}
	for _, v := range colSum {
		sumCols += choose2(v)
	}
	total := choose2(n)
	expected := sumRows * sumCols / total
	maxIdx := (sumRows + sumCols) / 2
	if maxIdx == expected {
		return 0
	}
	return (sumCells - expected) / (maxIdx - expected)
}
