// Multivariate classification: the extension the paper's footnote 1
// defers to future work. Motion-capture-like trajectories (channels
// coupled through a shared latent phase, per-instance phase shifts and
// shared smooth warping) are classified with 1-NN under the vector
// lock-step distance, dependent DTW/ERP/MSM (one warping path for all
// channels), independent DTW (one path per channel), independently lifted
// univariate measures, and normalized soft-DTW — showing when channel
// coupling matters. A second pass masks 20% of the samples as missing
// (NaN), where only the masked lock-step measures retain signal without
// imputation.
package main

import (
	"fmt"

	repro "repro"

	"repro/internal/multivariate"
)

func main() {
	cfg := multivariate.GenConfig{
		Name: "Gestures", Length: 80, Channels: 3, NumClasses: 4,
		TrainSize: 32, TestSize: 40, Seed: 5,
		NoiseSigma: 0.2, WarpFrac: 0.08, PhaseShift: true,
	}
	d := multivariate.Generate(cfg)
	missingCfg := cfg
	missingCfg.MissingFrac = 0.2
	dm := multivariate.Generate(missingCfg)
	fmt.Printf("dataset %s: %d train / %d test, %d channels, length %d\n\n",
		d.Name, len(d.Train), len(d.Test), d.Train[0].Channels(), len(d.Train[0]))

	measures := []repro.MVMeasure{
		repro.MVEuclidean(),
		repro.MVDTWDependent(15),
		repro.MVDTWIndependent(15),
		repro.MVERPDependent(0),
		repro.MVMSMDependent(0.5),
		repro.MVIndependent(repro.Lorentzian()),
		repro.MVIndependent(repro.SBD()),
		repro.MVSoftDTW(0.1, true),
		repro.MVMaskedEuclidean(0.3),
		repro.MVMaskedManhattan(0.3),
	}
	fmt.Printf("%-28s %-8s %s\n", "measure", "clean", "missing-20%")
	for _, m := range measures {
		acc := repro.MVOneNN(m, d.Train, d.TrainLabels, d.Test, d.TestLabels)
		accM := repro.MVOneNN(m, dm.Train, dm.TrainLabels, dm.Test, dm.TestLabels)
		fmt.Printf("%-28s %-8.4f %.4f\n", m.Name(), acc, accM)
	}
	fmt.Println("\nThe channels share one latent warp, so the dependent DTW (a single")
	fmt.Println("warping path over vector points) exploits the coupling that the")
	fmt.Println("independent per-channel variants cannot see. Once samples go missing,")
	fmt.Println("NaN poisons every unmasked distance, while the masked lock-step")
	fmt.Println("measures rescale each channel over its observed pairs and drop")
	fmt.Println("channels below the minimum-support fraction.")
}
