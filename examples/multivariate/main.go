// Multivariate classification: the extension the paper's footnote 1
// defers to future work. Motion-capture-like trajectories (channels
// coupled through a shared latent phase, per-instance phase shifts and
// shared smooth warping) are classified with 1-NN under the vector
// lock-step distance, dependent DTW (one warping path for all channels),
// independent DTW (one path per channel), and an independently lifted
// univariate measure — showing when channel coupling matters.
package main

import (
	"fmt"

	repro "repro"

	"repro/internal/multivariate"
)

func main() {
	d := multivariate.Generate(multivariate.GenConfig{
		Name: "Gestures", Length: 80, Channels: 3, NumClasses: 4,
		TrainSize: 32, TestSize: 40, Seed: 5,
		NoiseSigma: 0.2, WarpFrac: 0.08, PhaseShift: true,
	})
	fmt.Printf("dataset %s: %d train / %d test, %d channels, length %d\n\n",
		d.Name, len(d.Train), len(d.Test), d.Train[0].Channels(), len(d.Train[0]))

	measures := []repro.MVMeasure{
		repro.MVEuclidean(),
		repro.MVDTWDependent(15),
		repro.MVDTWIndependent(15),
		repro.MVIndependent(repro.Lorentzian()),
		repro.MVIndependent(repro.SBD()),
	}
	fmt.Printf("%-26s %s\n", "measure", "1-NN accuracy")
	for _, m := range measures {
		acc := repro.MVOneNN(m, d.Train, d.TrainLabels, d.Test, d.TestLabels)
		fmt.Printf("%-26s %.4f\n", m.Name(), acc)
	}
	fmt.Println("\nThe channels share one latent warp, so the dependent DTW (a single")
	fmt.Println("warping path over vector points) exploits the coupling that the")
	fmt.Println("independent per-channel variants cannot see.")
}
