// ECG similarity search: the workload the paper's introduction motivates.
// A "database" of heartbeat-like series is searched with 1-NN queries
// under several measures, comparing retrieval quality (does the neighbor
// share the query's class?) and wall-clock cost — a miniature of the
// paper's Figure 9 trade-off on a single realistic scenario, including
// LB_Keogh-pruned DTW search.
package main

import (
	"fmt"
	"time"

	repro "repro"
)

func main() {
	// Database of 200 beats from 4 morphological classes; queries are 50
	// held-out beats. Beats are misaligned (shifted R peaks) and locally
	// warped (heart-rate variation).
	d := repro.GenerateDataset(repro.DatasetConfig{
		Name: "ECGSearch", Family: repro.FamilyECG, Length: 256,
		NumClasses: 4, TrainSize: 200, TestSize: 50, Seed: 11,
		NoiseSigma: 0.2, ShiftFrac: 0.1, WarpFrac: 0.1, AmpJitter: 0.3,
	})
	fmt.Printf("database=%d beats, queries=%d, length=%d, classes=%d\n\n",
		len(d.Train), len(d.Test), d.Length(), d.NumClasses())

	measures := []repro.Measure{
		repro.Euclidean(),
		repro.Lorentzian(),
		repro.SBD(),
		repro.DTW(10),
		repro.MSM(0.5),
		repro.SINK(5),
	}
	fmt.Printf("%-14s %-10s %-12s %s\n", "measure", "hit-rate", "total", "per-query")
	for _, m := range measures {
		start := time.Now()
		e := repro.DistanceMatrix(m, d.Test, d.Train)
		hit := repro.OneNN(e, d.TestLabels, d.TrainLabels)
		elapsed := time.Since(start)
		fmt.Printf("%-14s %-10.4f %-12v %v\n",
			m.Name(), hit, elapsed.Round(time.Microsecond),
			(elapsed / time.Duration(len(d.Test))).Round(time.Microsecond))
	}

	// DTW search with LB_Keogh pruning: the classic way to make the O(m^2)
	// measure usable for search. The library precomputes each query's
	// envelope once and skips every candidate whose lower bound cannot
	// beat the best distance so far.
	fmt.Println("\nDTW(10%) search with LB_Keogh pruning:")
	pruned, total, correct := 0, 0, 0
	start := time.Now()
	for qi, q := range d.Test {
		best, _, p := repro.NNSearchDTW(q, d.Train, 10)
		pruned += p
		total += len(d.Train)
		if d.TrainLabels[best] == d.TestLabels[qi] {
			correct++
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("hit-rate=%.4f pruned %d/%d DTW computations (%.1f%%), total=%v\n",
		float64(correct)/float64(len(d.Test)), pruned, total,
		100*float64(pruned)/float64(total), elapsed.Round(time.Microsecond))
}
