// Motif discovery and anomaly detection: two of the time-series mining
// tasks the paper's introduction motivates, built on the FFT-based
// subsequence-search substrate (the MASS distance profile and the matrix
// profile). A long sensor-like recording is synthesized with a repeated
// hidden pattern (the motif) and one corrupted region (the discord); the
// matrix profile localizes both.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	repro "repro"
)

func main() {
	const (
		n      = 1200
		window = 60
	)
	rng := rand.New(rand.NewSource(7))

	// Baseline: daily-cycle-like oscillation plus noise.
	t := make([]float64, n)
	for i := range t {
		t[i] = 0.8*math.Sin(2*math.Pi*float64(i)/200) + 0.35*rng.NormFloat64()
	}
	// Hidden motif: the same sharp double-peak planted twice.
	pattern := make([]float64, window)
	for i := range pattern {
		x := float64(i) / float64(window)
		pattern[i] = 3*math.Exp(-100*(x-0.3)*(x-0.3)) + 2.2*math.Exp(-120*(x-0.7)*(x-0.7))
	}
	plant := func(at int) {
		for i, v := range pattern {
			t[at+i] += v
		}
	}
	plant(150)
	plant(800)
	// Anomaly: a flat-lined sensor dropout, longer than the window so the
	// affected subsequences have no genuine neighbor anywhere.
	for i := 500; i < 590; i++ {
		t[i] = t[499]
	}

	fmt.Printf("series length %d, window %d\n\n", n, window)

	// Motif discovery via the matrix profile.
	i, j, dist := repro.Motif(t, window)
	fmt.Printf("motif pair: offsets %d and %d (distance %.4f)\n", i, j, dist)
	fmt.Printf("planted at: offsets 150 and 800\n\n")

	// Anomaly detection: the discord.
	offset, ddist := repro.Discord(t, window)
	fmt.Printf("discord: offset %d (distance %.4f); dropout planted at 500-590\n\n", offset, ddist)

	// Query search: find every occurrence of the pattern with MASS.
	matches := repro.TopKMatches(t, pattern, 3)
	fmt.Println("top-3 matches for the pattern (MASS distance profile):")
	for rank, m := range matches {
		fmt.Printf("  #%d offset=%-5d distance=%.4f\n", rank+1, m.Offset, m.Distance)
	}

	// A coarse ASCII rendering of the matrix profile: peaks mark anomalies,
	// valleys mark motifs.
	profile, _ := repro.MatrixProfile(t, window)
	fmt.Println("\nmatrix profile (binned; high = anomalous, low = repeated):")
	fmt.Println(sparkline(profile, 80))
}

// sparkline renders values as a one-line bar chart of the given width.
func sparkline(v []float64, width int) string {
	levels := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range v {
		if math.IsInf(x, 0) {
			continue
		}
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	per := (len(v) + width - 1) / width
	for start := 0; start < len(v); start += per {
		end := start + per
		if end > len(v) {
			end = len(v)
		}
		max := lo
		for _, x := range v[start:end] {
			if !math.IsInf(x, 0) && x > max {
				max = x
			}
		}
		idx := int((max - lo) / (hi - lo) * float64(len(levels)-1))
		b.WriteByte(levels[idx])
	}
	return b.String()
}
