// Indexed similarity search: the M2 theme of the paper. ED's popularity
// rests partly on its indexing support (PAA/DFT lower bounds, GEMINI
// filter-and-refine); this example shows (i) a PAA-lower-bounded ED index
// pruning most exact computations, and (ii) that MSM — the paper's new
// best elastic measure — is a metric and therefore exactly indexable with
// a vantage-point tree, countering the notion that only ED is
// index-friendly.
package main

import (
	"fmt"
	"time"

	repro "repro"
)

func main() {
	// A database of 400 device-load profiles from 4 classes.
	d := repro.GenerateDataset(repro.DatasetConfig{
		Name: "IndexDemo", Family: repro.FamilyDevice, Length: 128,
		NumClasses: 4, TrainSize: 400, TestSize: 40, Seed: 23,
		NoiseSigma: 0.2, AmpJitter: 0.2,
	})
	refs := d.Train
	queries := d.Test
	fmt.Printf("database=%d series, queries=%d, length=%d\n\n", len(refs), len(queries), d.Length())

	// (i) GEMINI-style Euclidean search with the PAA lower bound.
	ix := repro.NewEDIndex(refs, 16)
	var exact, pruned int
	start := time.Now()
	for _, q := range queries {
		_, _, stats := ix.NN(q)
		exact += stats.Exact
		pruned += stats.Pruned
	}
	elapsed := time.Since(start)
	total := len(queries) * len(refs)
	fmt.Printf("PAA-ED index:   %d/%d exact ED computations (%.1f%% pruned), %v\n",
		exact, total, 100*float64(total-exact)/float64(total), elapsed.Round(time.Microsecond))

	// Linear-scan baseline for comparison.
	ed := repro.Euclidean()
	start = time.Now()
	for _, q := range queries {
		best := -1.0
		for _, r := range refs {
			if v := ed.Distance(q, r); best < 0 || v < best {
				best = v
			}
		}
	}
	fmt.Printf("ED linear scan: %d/%d exact ED computations, %v\n\n",
		total, total, time.Since(start).Round(time.Microsecond))

	// (ii) iSAX: the tree index of the paper that originated M2. Exact
	// search verifies only a fraction of the database; approximate search
	// visits a single leaf.
	zrefs := make([][]float64, len(refs))
	for i, r := range refs {
		zrefs[i] = repro.ZNormalize(r)
	}
	isax := repro.NewISAX(d.Length(), 16, 8)
	for _, r := range zrefs {
		isax.Insert(r)
	}
	var verified int
	start = time.Now()
	for _, q := range queries {
		_, _, v := isax.NN(repro.ZNormalize(q))
		verified += v
	}
	fmt.Printf("iSAX exact:     %d/%d series verified (%.1f%% pruned), %v\n",
		verified, total, 100*float64(total-verified)/float64(total),
		time.Since(start).Round(time.Microsecond))
	start = time.Now()
	approxOK := 0
	for _, q := range queries {
		zq := repro.ZNormalize(q)
		aBest, aDist := isax.ApproxNN(zq)
		eBest, eDist, _ := isax.NN(zq)
		if aBest == eBest || aDist <= eDist*1.25 {
			approxOK++ // approximate answer within 25% of the true NN
		}
	}
	fmt.Printf("iSAX approx:    %d/%d queries within 1.25x of the true NN\n\n",
		approxOK, len(queries))

	// (iii) VP-tree over MSM: exact metric indexing of an elastic measure.
	msm := repro.MSM(0.5)
	tree := repro.NewVPTree(refs, msm, 1)
	var treeComputed int
	start = time.Now()
	for _, q := range queries {
		_, _, c := tree.NN(q)
		treeComputed += c
	}
	elapsed = time.Since(start)
	fmt.Printf("VP-tree (MSM):  %d/%d exact MSM computations (%.1f%% pruned), %v\n",
		treeComputed, total, 100*float64(total-treeComputed)/float64(total), elapsed.Round(time.Microsecond))

	start = time.Now()
	for _, q := range queries {
		best := -1.0
		for _, r := range refs {
			if v := msm.Distance(q, r); best < 0 || v < best {
				best = v
			}
		}
	}
	fmt.Printf("MSM linear scan: %d/%d exact MSM computations, %v\n",
		total, total, time.Since(start).Round(time.Microsecond))
}
