// Quickstart: generate a labelled dataset, compare one measure from each
// of the paper's five categories with the 1-NN evaluation framework, and
// test whether the winner's advantage is statistically significant.
package main

import (
	"fmt"

	repro "repro"
)

func main() {
	// An ECG-like dataset whose instances are randomly shifted — the kind
	// of distortion that separates alignment-aware measures from ED.
	d := repro.GenerateDataset(repro.DatasetConfig{
		Name: "QuickstartECG", Family: repro.FamilyECG, Length: 128,
		NumClasses: 3, TrainSize: 24, TestSize: 60, Seed: 42,
		NoiseSigma: 0.25, ShiftFrac: 0.12, WarpFrac: 0.05, AmpJitter: 0.2,
	})
	fmt.Printf("dataset %s: length=%d classes=%d train=%d test=%d\n\n",
		d.Name, d.Length(), d.NumClasses(), len(d.Train), len(d.Test))

	// One representative per category (paper's Table 1).
	measures := []struct {
		category string
		m        repro.Measure
	}{
		{"lock-step", repro.Euclidean()},
		{"lock-step", repro.Lorentzian()},
		{"sliding", repro.SBD()},
		{"elastic", repro.MSM(0.5)},
		{"kernel", repro.KDTW(0.125)},
	}

	fmt.Printf("%-12s %-14s %s\n", "category", "measure", "1-NN accuracy")
	for _, e := range measures {
		acc := repro.TestAccuracy(e.m, d, nil) // data is already z-normalized
		fmt.Printf("%-12s %-14s %.4f\n", e.category, e.m.Name(), acc)
	}

	// The embedding category needs a fit on the training split first.
	grail := repro.NewGRAIL(5, 1)
	grail.Fit(d.Train)
	acc := repro.TestAccuracy(repro.EmbeddingMeasure(grail), d, nil)
	fmt.Printf("%-12s %-14s %.4f\n\n", "embedding", "grail[g=5]", acc)

	// Is SBD's advantage over ED significant? Evaluate both across a small
	// archive and run the paper's Wilcoxon signed-rank test.
	archive := repro.GenerateArchive(repro.ArchiveOptions{
		Seed: 7, Count: 16, MaxLength: 96, MaxTrain: 16, MaxTest: 24,
	})
	var edAccs, sbdAccs []float64
	for _, ds := range archive {
		edAccs = append(edAccs, repro.TestAccuracy(repro.Euclidean(), ds, nil))
		sbdAccs = append(sbdAccs, repro.TestAccuracy(repro.SBD(), ds, nil))
	}
	w := repro.Wilcoxon(sbdAccs, edAccs)
	fmt.Printf("SBD vs ED across %d datasets: wins=%d ties=%d losses=%d p=%.4f\n",
		len(archive), w.Wins, w.Ties, w.Losses, w.PValue)
	if w.PValue < 0.05 && w.WPlus > w.WMinus {
		fmt.Println("=> SBD significantly outperforms ED (the paper's M3 finding).")
	} else {
		fmt.Println("=> no significant difference on this small archive.")
	}
}
