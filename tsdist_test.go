package repro

import (
	"math"
	"strings"
	"testing"
)

// These tests exercise the public facade end to end, the same surface the
// examples and cmd tools use.

func demoDataset() *Dataset {
	return GenerateDataset(DatasetConfig{
		Name: "FacadeDemo", Family: FamilyECG, Length: 64,
		NumClasses: 2, TrainSize: 12, TestSize: 16, Seed: 21,
		NoiseSigma: 0.2, ShiftFrac: 0.12,
	})
}

func TestFacadeQuickstartFlow(t *testing.T) {
	d := demoDataset()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	edAcc := TestAccuracy(Euclidean(), d, ZScore())
	sbdAcc := TestAccuracy(SBD(), d, ZScore())
	if edAcc < 0 || edAcc > 1 || sbdAcc < 0 || sbdAcc > 1 {
		t.Fatalf("accuracies out of range: %g %g", edAcc, sbdAcc)
	}
	// On a shifted ECG dataset the sliding measure must beat ED.
	if sbdAcc < edAcc {
		t.Errorf("SBD %g < ED %g on shift-heavy data", sbdAcc, edAcc)
	}
}

func TestFacadeMeasureInventoryCounts(t *testing.T) {
	if n := len(AllLockStep()); n != 53 {
		t.Errorf("lock-step inventory = %d, want 53 (52 counted + bonus)", n)
	}
	if n := len(AllSliding()); n != 4 {
		t.Errorf("sliding inventory = %d, want 4", n)
	}
	if n := len(AllElastic()); n != 7 {
		t.Errorf("elastic inventory = %d, want 7", n)
	}
	if n := len(AllKernels()); n != 4 {
		t.Errorf("kernel inventory = %d, want 4", n)
	}
	if n := len(AllNormalizers()); n != 8 {
		t.Errorf("normalizer inventory = %d, want 8", n)
	}
}

func TestFacadeDistanceMatrixAndOneNN(t *testing.T) {
	d := demoDataset()
	e := DistanceMatrix(MSM(0.5), d.Test, d.Train)
	if len(e) != len(d.Test) || len(e[0]) != len(d.Train) {
		t.Fatalf("matrix shape %dx%d", len(e), len(e[0]))
	}
	acc := OneNN(e, d.TestLabels, d.TrainLabels)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %g", acc)
	}
}

func TestFacadeSupervisedTuning(t *testing.T) {
	d := demoDataset()
	acc, chosen := SupervisedAccuracy(DTWGrid(), d, nil)
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy %g", acc)
	}
	if !strings.HasPrefix(chosen.Name(), "dtw[") {
		t.Fatalf("chosen %s", chosen.Name())
	}
}

func TestFacadeEmbeddingFlow(t *testing.T) {
	d := demoDataset()
	g := NewGRAIL(5, 1)
	g.Fit(d.Train)
	m := EmbeddingMeasure(g)
	acc := TestAccuracy(m, d, nil)
	if acc < 0 || acc > 1 {
		t.Fatalf("GRAIL accuracy %g", acc)
	}
}

func TestFacadeStatistics(t *testing.T) {
	x := []float64{0.9, 0.8, 0.85, 0.95, 0.9, 0.8, 0.88, 0.92, 0.83, 0.91, 0.87, 0.9}
	y := []float64{0.7, 0.6, 0.65, 0.75, 0.72, 0.61, 0.68, 0.7, 0.66, 0.71, 0.69, 0.73}
	w := Wilcoxon(x, y)
	if w.PValue >= 0.05 {
		t.Fatalf("clear shift should be significant, p = %g", w.PValue)
	}
	scores := [][]float64{{0.9, 0.7, 0.5}, {0.8, 0.7, 0.4}, {0.95, 0.6, 0.5}, {0.85, 0.75, 0.45}}
	f := Friedman(scores, 0.10)
	if f.K != 3 || f.N != 4 {
		t.Fatalf("friedman dims %dx%d", f.N, f.K)
	}
	diagram := CriticalDifferenceDiagram([]string{"a", "b", "c"}, f.AvgRanks, f.CriticalDiff)
	if !strings.Contains(diagram, "rank") {
		t.Error("diagram missing rank labels")
	}
}

func TestFacadeNormalizers(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	z := ZScore().Normalize(x)
	var mean float64
	for _, v := range z {
		mean += v
	}
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("zscore mean %g", mean)
	}
	if NormalizerByName("minmax") == nil {
		t.Fatal("minmax not resolvable by name")
	}
	if n := MinMaxRange(1, 2).Normalize(x); n[0] != 1 || n[3] != 2 {
		t.Fatalf("minmaxrange = %v", n)
	}
}

func TestFacadeAdaptiveScaling(t *testing.T) {
	m := AdaptiveScaling(Euclidean())
	x := []float64{1, 2, 3}
	y := []float64{2, 4, 6}
	if d := m.Distance(x, y); d > 1e-9 {
		t.Fatalf("adaptive ED of scaled pair = %g", d)
	}
}

func TestFacadeLBKeogh(t *testing.T) {
	x := []float64{0, 1, 0, -1, 0, 1, 0, -1}
	y := []float64{1, 0, -1, 0, 1, 0, -1, 0}
	lb := LBKeogh(x, y, 2)
	dtw := DTW(25).Distance(x, y)
	if lb > dtw+1e-9 {
		t.Fatalf("LB %g exceeds DTW %g", lb, dtw)
	}
}

func TestFacadeArchiveAndUCRRoundTrip(t *testing.T) {
	archive := GenerateArchive(ArchiveOptions{Seed: 5, Count: 3, MaxLength: 48, MaxTrain: 8, MaxTest: 8})
	if len(archive) != 3 {
		t.Fatalf("archive size %d", len(archive))
	}
	dir := t.TempDir()
	if err := SaveUCR(dir, archive[0]); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadUCR(dir, archive[0].Name)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Length() != archive[0].Length() {
		t.Fatalf("length %d != %d", loaded.Length(), archive[0].Length())
	}
}

func TestFacadeExperimentDrivers(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment drivers are exercised in internal/experiments")
	}
	opts := ExperimentOptions{
		Archive:    GenerateArchive(ArchiveOptions{Seed: 2, Count: 6, MaxLength: 40, MaxTrain: 8, MaxTest: 10}),
		GridStride: 8,
	}
	tab := Table3(opts)
	if tab.Baseline.Measure != "lorentzian" {
		t.Fatalf("table 3 baseline = %s", tab.Baseline.Measure)
	}
	r := Figure6(opts)
	if len(r.Names) != 9 {
		t.Fatalf("figure 6 methods = %d, want 9", len(r.Names))
	}
	if out := Table4(); !strings.Contains(out, "candidates") {
		t.Error("Table4 render incomplete")
	}
	if fig1 := Figure1(); !strings.Contains(fig1, "zscore") {
		t.Error("Figure1 render incomplete")
	}
}

func TestFacadeZNormalize(t *testing.T) {
	z := ZNormalize([]float64{2, 4, 6})
	if math.Abs(z[0]+z[2]) > 1e-12 {
		t.Fatalf("z = %v not symmetric", z)
	}
}

func TestFacadeKernelsAndElastic(t *testing.T) {
	x := []float64{0, 1, 0, -1, 0, 1, 0, -1}
	y := []float64{0.1, 0.9, 0, -1.1, 0.1, 1, -0.1, -0.9}
	for _, m := range []Measure{
		RBF(1), SINK(5), GAK(1), KDTW(0.125),
		DTW(10), LCSS(5, 0.2), EDR(0.1), ERP(), MSM(0.5), TWE(1, 0.0001), Swale(0.2, 5, 1),
		Lorentzian(), Jaccard(), Soergel(), Emanon4(), DISSIM(), ASD(),
		NCC(), NCCb(), NCCu(),
	} {
		d := m.Distance(x, y)
		if math.IsNaN(d) {
			t.Errorf("%s returned NaN", m.Name())
		}
		if m.Distance(x, x) > d+1e-9 {
			t.Errorf("%s: d(x,x) > d(x,y)", m.Name())
		}
	}
}
