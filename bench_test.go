package repro

import (
	"math/rand"
	"testing"

	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/sliding"
)

// This file holds one benchmark per table and figure of the paper's
// evaluation (the regeneration harness) plus the ablation benches called
// out in DESIGN.md §8. Benchmarks use a reduced archive so `go test
// -bench=.` completes on a laptop; `cmd/tsbench -full` runs the
// 128-dataset configuration.

// benchOpts is the shared reduced configuration.
func benchOpts() experiments.Options {
	return experiments.Options{
		Archive: dataset.GenerateArchive(dataset.ArchiveOptions{
			Seed: 1, Count: 12, MaxLength: 64, MaxTrain: 12, MaxTest: 16,
		}),
		GridStride: 5,
	}
}

func BenchmarkTable2LockStep(b *testing.B) {
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := experiments.Table2(opts)
		if len(tab.Rows) == 0 {
			b.Fatal("Table 2 produced no rows")
		}
	}
}

func BenchmarkTable3Sliding(b *testing.B) {
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := experiments.Table3(opts)
		if len(tab.Rows) == 0 {
			b.Fatal("Table 3 produced no rows")
		}
	}
}

func BenchmarkTable5Elastic(b *testing.B) {
	opts := benchOpts()
	opts.GridStride = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := experiments.Table5(opts)
		if len(tab.Rows) == 0 {
			b.Fatal("Table 5 produced no rows")
		}
	}
}

func BenchmarkTable6Kernel(b *testing.B) {
	opts := benchOpts()
	opts.GridStride = 10
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := experiments.Table6(opts)
		if len(tab.Rows) == 0 {
			b.Fatal("Table 6 produced no rows")
		}
	}
}

func BenchmarkTable7Embedding(b *testing.B) {
	opts := benchOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab := experiments.Table7(opts)
		if len(tab.Rows) != 4 {
			b.Fatal("Table 7 should have 4 rows")
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		experiments.Figure2(opts)
	}
}

func BenchmarkFigure3(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		experiments.Figure3(opts)
	}
}

func BenchmarkFigure4(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		experiments.Figure4(opts)
	}
}

func BenchmarkFigure5(b *testing.B) {
	opts := benchOpts()
	opts.GridStride = 10
	for i := 0; i < b.N; i++ {
		experiments.Figure5(opts)
	}
}

func BenchmarkFigure6(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		experiments.Figure6(opts)
	}
}

func BenchmarkFigure7(b *testing.B) {
	opts := benchOpts()
	opts.GridStride = 10
	for i := 0; i < b.N; i++ {
		experiments.Figure7(opts)
	}
}

func BenchmarkFigure8(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		experiments.Figure8(opts)
	}
}

func BenchmarkFigure9(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure9(opts)
		if len(pts) != 11 {
			b.Fatal("Figure 9 should have 11 points")
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		experiments.Figure10(opts, 64, []int{8, 16, 32, 64})
	}
}

//
// ---- Ablation benches (DESIGN.md §8) ----
//

func randSeries(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// BenchmarkAblationFFTCrossCorrelation compares the FFT-backed
// cross-correlation against the naive O(m^2) sliding sum.
func BenchmarkAblationFFTCrossCorrelation(b *testing.B) {
	x := randSeries(1, 512)
	y := randSeries(2, 512)
	b.Run("fft", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fft.CrossCorrelation(x, y)
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fft.CrossCorrelationNaive(x, y)
		}
	})
}

// BenchmarkAblationSlidingPrepared compares SBD with and without the
// per-series prepared-FFT fast path.
func BenchmarkAblationSlidingPrepared(b *testing.B) {
	x := randSeries(3, 256)
	y := randSeries(4, 256)
	m := sliding.SBD()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Distance(x, y)
		}
	})
	b.Run("prepared", func(b *testing.B) {
		px, py := m.Prepare(x), m.Prepare(y)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PreparedDistance(px, py)
		}
	})
}

// BenchmarkAblationDTWBand compares DTW with a 10% Sakoe-Chiba band
// against the unconstrained computation.
func BenchmarkAblationDTWBand(b *testing.B) {
	x := randSeries(5, 512)
	y := randSeries(6, 512)
	b.Run("band10", func(b *testing.B) {
		d := elastic.DTW{DeltaPercent: 10}
		for i := 0; i < b.N; i++ {
			d.Distance(x, y)
		}
	})
	b.Run("full", func(b *testing.B) {
		d := elastic.DTW{DeltaPercent: 100}
		for i := 0; i < b.N; i++ {
			d.Distance(x, y)
		}
	})
}

// BenchmarkAblationLBKeoghPruning measures 1-NN search with and without
// LB_Keogh pruning of the DTW comparisons.
func BenchmarkAblationLBKeoghPruning(b *testing.B) {
	d := dataset.Generate(dataset.Config{
		Name: "Prune", Family: dataset.FamilyECG, Length: 128,
		NumClasses: 2, TrainSize: 40, TestSize: 10, Seed: 7,
		NoiseSigma: 0.2, WarpFrac: 0.1,
	})
	dtw := elastic.DTW{DeltaPercent: 10}
	b.Run("nopruning", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range d.Test {
				best := -1.0
				for _, r := range d.Train {
					v := dtw.Distance(q, r)
					if best < 0 || v < best {
						best = v
					}
				}
			}
		}
	})
	b.Run("lbkeogh", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range d.Test {
				elastic.NNSearchDTW(q, d.Train, 10)
			}
		}
	})
}

// BenchmarkAblationGRAILLandmarks sweeps the GRAIL landmark count, the
// accuracy/cost knob of the Nyström approximation.
func BenchmarkAblationGRAILLandmarks(b *testing.B) {
	d := dataset.Generate(dataset.Config{
		Name: "Grail", Family: dataset.FamilyHarmonic, Length: 64,
		NumClasses: 3, TrainSize: 30, TestSize: 15, Seed: 8,
		NoiseSigma: 0.2, ShiftFrac: 0.1,
	})
	for _, dim := range []int{5, 10, 20} {
		b.Run(map[int]string{5: "d5", 10: "d10", 20: "d20"}[dim], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := &embedding.GRAIL{Gamma: 5, Dim: dim, Seed: 1}
				g.Fit(d.Train)
				eval.Matrix(embedding.Measure{E: g}, d.Test, d.Train)
			}
		})
	}
}

// BenchmarkMatrixParallelism measures the full dissimilarity-matrix
// computation that dominates every experiment.
func BenchmarkMatrixParallelism(b *testing.B) {
	d := dataset.Generate(dataset.Config{
		Name: "Mat", Family: dataset.FamilyShapes, Length: 128,
		NumClasses: 2, TrainSize: 50, TestSize: 50, Seed: 9, NoiseSigma: 0.2,
	})
	b.Run("euclidean", func(b *testing.B) {
		m := Euclidean()
		for i := 0; i < b.N; i++ {
			eval.Matrix(m, d.Test, d.Train)
		}
	})
	b.Run("sbd", func(b *testing.B) {
		m := SBD()
		for i := 0; i < b.N; i++ {
			eval.Matrix(m, d.Test, d.Train)
		}
	})
	b.Run("dtw10", func(b *testing.B) {
		m := DTW(10)
		for i := 0; i < b.N; i++ {
			eval.Matrix(m, d.Test, d.Train)
		}
	})
}

// BenchmarkAblationISAX compares exact 1-NN search through the iSAX tree
// against the PAA filter-and-refine index and a plain linear scan.
func BenchmarkAblationISAX(b *testing.B) {
	d := dataset.Generate(dataset.Config{
		Name: "ISAXBench", Family: dataset.FamilyHarmonic, Length: 128,
		NumClasses: 4, TrainSize: 200, TestSize: 20, Seed: 10,
		NoiseSigma: 0.2,
	})
	b.Run("isax", func(b *testing.B) {
		ix := NewISAX(d.Length(), 16, 8)
		for _, r := range d.Train {
			ix.Insert(r)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range d.Test {
				ix.NN(q)
			}
		}
	})
	b.Run("paa", func(b *testing.B) {
		ix := NewEDIndex(d.Train, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, q := range d.Test {
				ix.NN(q)
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		ed := Euclidean()
		for i := 0; i < b.N; i++ {
			for _, q := range d.Test {
				best := -1.0
				for _, r := range d.Train {
					if v := ed.Distance(q, r); best < 0 || v < best {
						best = v
					}
				}
			}
		}
	})
}
