// Package repro is a from-scratch Go reproduction of "Debunking Four
// Long-Standing Misconceptions of Time-Series Distance Measures"
// (Paparrizos, Liu, Elmore, Franklin; SIGMOD 2020).
//
// It provides the paper's complete measure inventory — 52 lock-step
// measures, 4 sliding (cross-correlation) measures, 7 elastic measures,
// 4 kernel functions, and 4 embedding measures — together with the 8
// time-series normalization methods, the 1-NN evaluation framework of
// Algorithm 1 (with supervised leave-one-out parameter tuning and the
// Table 4 grids), the statistical machinery (Wilcoxon signed-rank,
// Friedman + Nemenyi, critical-difference diagrams), a deterministic
// synthetic archive standing in for the UCR Time-Series Archive, and
// experiment drivers regenerating every table and figure of the paper's
// evaluation.
//
// This file is the public facade: it re-exports the library's types and
// the most common entry points. Examples under examples/ and the tools
// under cmd/ are written exclusively against this surface.
//
// Quick start:
//
//	d := repro.GenerateDataset(repro.DatasetConfig{
//		Name: "demo", Family: repro.FamilyECG, Length: 128,
//		NumClasses: 2, TrainSize: 20, TestSize: 40, Seed: 1,
//		NoiseSigma: 0.2, ShiftFrac: 0.1,
//	})
//	acc := repro.TestAccuracy(repro.SBD(), d, repro.ZScore())
package repro

import (
	"context"

	"repro/internal/ann"
	"repro/internal/dataset"
	"repro/internal/elastic"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/index"
	"repro/internal/kernel"
	"repro/internal/kshape"
	"repro/internal/lockstep"
	"repro/internal/measure"
	"repro/internal/multivariate"
	"repro/internal/norm"
	"repro/internal/search"
	"repro/internal/sliding"
	"repro/internal/stats"
	"repro/internal/subsequence"
	"repro/internal/uncertain"
)

//
// ---- Core types ----
//

// Measure is a dissimilarity between two equal-length series; smaller
// means more similar. See the measure categories below for constructors.
type Measure = measure.Measure

// StatefulMeasure is the optional per-series precomputation fast path used
// when building full dissimilarity matrices.
type StatefulMeasure = measure.Stateful

// Normalizer transforms a single series as a preprocessing step.
type Normalizer = norm.Normalizer

// Dataset is a class-labelled dataset with a fixed train/test split.
type Dataset = dataset.Dataset

// DatasetConfig describes one synthetic dataset.
type DatasetConfig = dataset.Config

// Family selects a synthetic generator family.
type Family = dataset.Family

// Synthetic generator families, mirroring the UCR archive's data sources.
const (
	FamilyHarmonic = dataset.FamilyHarmonic
	FamilyBumps    = dataset.FamilyBumps
	FamilyCBF      = dataset.FamilyCBF
	FamilyShapes   = dataset.FamilyShapes
	FamilyECG      = dataset.FamilyECG
	FamilySpectro  = dataset.FamilySpectro
	FamilyDevice   = dataset.FamilyDevice
	FamilyWalk     = dataset.FamilyWalk
)

// ArchiveOptions controls synthetic archive generation.
type ArchiveOptions = dataset.ArchiveOptions

// Grid is a family of parameterized measure candidates for supervised
// tuning.
type Grid = eval.Grid

// Embedder learns a fixed-length similarity-preserving representation.
type Embedder = embedding.Embedder

//
// ---- Datasets ----
//

// GenerateDataset builds one synthetic dataset deterministically.
func GenerateDataset(cfg DatasetConfig) *Dataset { return dataset.Generate(cfg) }

// GenerateArchive builds a deterministic synthetic archive, the offline
// stand-in for the UCR Time-Series Archive (see DESIGN.md §4).
func GenerateArchive(opts ArchiveOptions) []*Dataset { return dataset.GenerateArchive(opts) }

// LoadUCR loads a real UCR-archive dataset directory (Name_TRAIN.tsv /
// Name_TEST.tsv), applying the paper's preprocessing (missing-value
// interpolation, resampling to the longest series).
func LoadUCR(dir, name string) (*Dataset, error) { return dataset.LoadUCR(dir, name) }

// SaveUCR writes a dataset in the UCR directory layout.
func SaveUCR(dir string, d *Dataset) error { return dataset.SaveUCR(dir, d) }

// ZNormalize z-scores one series (zero mean, unit variance).
func ZNormalize(x []float64) []float64 { return dataset.ZNormalize(x) }

//
// ---- Normalization methods (Section 4) ----
//

// ZScore returns the z-score normalizer, the literature's default.
func ZScore() Normalizer { return norm.ZScore() }

// MinMax returns the [0, 1] min-max normalizer.
func MinMax() Normalizer { return norm.MinMax() }

// MinMaxRange returns the [a, b] min-max normalizer.
func MinMaxRange(a, b float64) Normalizer { return norm.MinMaxRange(a, b) }

// MeanNorm returns the mean normalizer (z-score numerator over the value
// range).
func MeanNorm() Normalizer { return norm.MeanNorm() }

// MedianNorm returns the median normalizer.
func MedianNorm() Normalizer { return norm.MedianNorm() }

// UnitLength returns the unit-Euclidean-norm normalizer.
func UnitLength() Normalizer { return norm.UnitLength() }

// Logistic returns the sigmoid activation normalizer.
func Logistic() Normalizer { return norm.Logistic() }

// Tanh returns the hyperbolic tangent activation normalizer.
func Tanh() Normalizer { return norm.Tanh() }

// AllNormalizers returns the 8 per-series normalization methods.
func AllNormalizers() []Normalizer { return norm.All() }

// NormalizerByName resolves a normalizer by its registry name.
func NormalizerByName(name string) Normalizer { return norm.ByName(name) }

// AdaptiveScaling decorates a measure with the pairwise optimal-scaling
// transform of Section 4.
func AdaptiveScaling(m Measure) Measure { return norm.AdaptiveScaling(m) }

//
// ---- Lock-step measures (Section 5) ----
//

// Euclidean returns the L2 distance, the paper's lock-step baseline.
func Euclidean() Measure { return lockstep.Euclidean() }

// Manhattan returns the L1 distance.
func Manhattan() Measure { return lockstep.Manhattan() }

// Minkowski returns the L_p distance.
func Minkowski(p float64) Measure { return lockstep.Minkowski(p) }

// Chebyshev returns the L_inf distance.
func Chebyshev() Measure { return lockstep.Chebyshev() }

// Lorentzian returns the log-L1 distance, the new lock-step state of the
// art identified by Table 2.
func Lorentzian() Measure { return lockstep.Lorentzian() }

// Jaccard returns the Jaccard distance (strong under MeanNorm, Table 2).
func Jaccard() Measure { return lockstep.Jaccard() }

// Soergel returns the Soergel distance (strong under MinMax, Table 2).
func Soergel() Measure { return lockstep.Soergel() }

// Emanon4 returns the vicissitude chi-squared measure the paper surfaces
// as previously unknown to the time-series literature.
func Emanon4() Measure { return lockstep.Emanon4() }

// DISSIM returns the smoothing approximation of the DISSIM integral
// distance.
func DISSIM() Measure { return lockstep.DISSIM() }

// ASD returns the adaptive scaling distance.
func ASD() Measure { return lockstep.ASD() }

// AllLockStep returns the full 52-measure lock-step inventory (plus the
// bonus Emanon6).
func AllLockStep() []Measure { return lockstep.All() }

//
// ---- Sliding measures (Section 6) ----
//

// SBD returns NCCc, the coefficient-normalized cross-correlation distance
// (the shape-based distance of k-Shape) — the strong baseline of
// misconception M3.
func SBD() Measure { return sliding.SBD() }

// NCC returns the raw maximum cross-correlation measure.
func NCC() Measure { return sliding.New(sliding.NCC) }

// NCCb returns the biased-estimator cross-correlation measure.
func NCCb() Measure { return sliding.New(sliding.NCCb) }

// NCCu returns the unbiased-estimator cross-correlation measure.
func NCCu() Measure { return sliding.New(sliding.NCCu) }

// AllSliding returns the 4 cross-correlation variants of Table 3.
func AllSliding() []Measure { return sliding.All() }

//
// ---- Elastic measures (Section 7) ----
//

// DTW returns Dynamic Time Warping with a Sakoe-Chiba band of
// deltaPercent% of the length (100 disables the constraint).
func DTW(deltaPercent int) Measure { return elastic.DTW{DeltaPercent: deltaPercent} }

// LCSS returns the Longest Common Subsequence distance.
func LCSS(deltaPercent int, epsilon float64) Measure {
	return elastic.LCSS{DeltaPercent: deltaPercent, Epsilon: epsilon}
}

// EDR returns the Edit Distance on Real sequence.
func EDR(epsilon float64) Measure { return elastic.EDR{Epsilon: epsilon} }

// ERP returns the Edit distance with Real Penalty (gap value 0).
func ERP() Measure { return elastic.ERP{G: 0} }

// MSM returns the Move-Split-Merge metric — the measure Table 5 shows
// significantly outperforming DTW.
func MSM(c float64) Measure { return elastic.MSM{C: c} }

// TWE returns the Time Warp Edit distance.
func TWE(lambda, nu float64) Measure { return elastic.TWE{Lambda: lambda, Nu: nu} }

// Swale returns the Sequence Weighted Alignment distance.
func Swale(epsilon, p, r float64) Measure { return elastic.Swale{Epsilon: epsilon, P: p, R: r} }

// LBKeogh returns the LB_Keogh lower bound of DTW for an absolute band
// half-width w (used for pruning).
func LBKeogh(x, y []float64, w int) float64 { return elastic.LBKeogh(x, y, w) }

// NNSearchDTW runs LB_Keogh-pruned 1-NN search of query against refs under
// DTW with the given band percentage, returning the nearest index, its
// distance, and the number of full DTW computations pruned.
func NNSearchDTW(query []float64, refs [][]float64, deltaPercent int) (best int, dist float64, pruned int) {
	return elastic.NNSearchDTW(query, refs, deltaPercent)
}

// SearchResult holds per-query nearest-neighbor indices and distances from
// the pruned search engine, plus its work counters.
type SearchResult = search.Result

// SearchStats counts candidate pairs, lower-bound prunes, and full
// distance computations of a pruned search.
type SearchStats = search.Stats

// SearchIndex is a reference set prepared for repeated pruned 1-NN
// queries (lower-bound envelopes or stateful preparations built once).
type SearchIndex = search.Index

// NewSearchIndex prepares refs for pruned 1-NN queries under m; obtain a
// per-goroutine handle with its Querier method.
func NewSearchIndex(m Measure, refs [][]float64) *SearchIndex { return search.NewIndex(m, refs) }

// SearchOneNN finds every query's nearest reference through the pruned
// engine (lower-bound cascade + early abandoning), with neighbors —
// including ties — identical to exhaustive matrix evaluation.
func SearchOneNN(m Measure, queries, refs [][]float64) SearchResult {
	return search.OneNN(m, queries, refs)
}

// SearchLeaveOneOut finds each training series' nearest other training
// series, halving the work for exactly symmetric measures.
func SearchLeaveOneOut(m Measure, train [][]float64) SearchResult {
	return search.LeaveOneOut(m, train)
}

// AllElastic returns the 7 elastic measures at the paper's unsupervised
// parameter choices.
func AllElastic() []Measure { return elastic.All() }

// Elastic-measure extensions the paper surveys as future work (Section 7):

// DDTW returns Derivative DTW: DTW on first-derivative estimates.
func DDTW(deltaPercent int) Measure { return elastic.DDTW{DeltaPercent: deltaPercent} }

// WDTW returns Weighted DTW with logistic phase-difference weights.
func WDTW(g float64) Measure { return elastic.WDTW{G: g} }

// DDBlend returns the Górecki derivative blend
// (1-alpha)*DTW + alpha*DDTW.
func DDBlend(deltaPercent int, alpha float64) Measure {
	return elastic.DDBlend{DeltaPercent: deltaPercent, Alpha: alpha}
}

// CIDMeasure wraps a base measure with the complexity-invariant
// correction of Batista et al.
func CIDMeasure(base Measure) Measure { return elastic.CID{Base: base} }

//
// ---- Kernel measures (Section 8) ----
//

// RBF returns the radial basis function kernel distance 1 - k.
func RBF(gamma float64) Measure { return kernel.RBF{Gamma: gamma} }

// SINK returns the shift-invariant normalized kernel distance of GRAIL.
func SINK(gamma float64) Measure { return kernel.SINK{Gamma: gamma} }

// GAK returns Cuturi's global alignment kernel distance (log-space).
func GAK(sigma float64) Measure { return kernel.GAK{Sigma: sigma} }

// KDTW returns the regularized DTW kernel distance of Marteau & Gibet —
// the kernel Table 6 shows outperforming DTW in both settings.
func KDTW(gamma float64) Measure { return kernel.KDTW{Gamma: gamma} }

// AllKernels returns the 4 kernel measures at the paper's unsupervised
// parameter choices.
func AllKernels() []Measure { return kernel.All() }

//
// ---- Embedding measures (Section 9) ----
//

// NewGRAIL returns an unfitted GRAIL embedder (Nyström over SINK).
func NewGRAIL(gamma float64, seed int64) Embedder {
	return &embedding.GRAIL{Gamma: gamma, Seed: seed}
}

// NewRWS returns an unfitted Random Warping Series embedder.
func NewRWS(gamma float64, dmax int, seed int64) Embedder {
	return &embedding.RWS{Gamma: gamma, DMax: dmax, Seed: seed}
}

// NewSPIRAL returns an unfitted SPIRAL (DTW-preserving) embedder.
func NewSPIRAL(seed int64) Embedder { return &embedding.SPIRAL{Seed: seed} }

// NewSIDL returns an unfitted shift-invariant dictionary learning embedder.
func NewSIDL(lambda, r float64, seed int64) Embedder {
	return &embedding.SIDL{Lambda: lambda, R: r, Seed: seed}
}

// EmbeddingMeasure wraps a fitted embedder as a Measure (ED over
// representations).
func EmbeddingMeasure(e Embedder) Measure { return embedding.Measure{E: e} }

//
// ---- Evaluation framework (Section 3) ----
//

// DistanceMatrix computes E[i][j] = d(queries[i], refs[j]) in parallel,
// using the stateful fast path when the measure provides one.
func DistanceMatrix(m Measure, queries, refs [][]float64) [][]float64 {
	return eval.Matrix(m, queries, refs)
}

// OneNN is Algorithm 1: 1-NN classification accuracy from a test-by-train
// dissimilarity matrix.
func OneNN(e [][]float64, testLabels, trainLabels []int) float64 {
	return eval.OneNN(e, testLabels, trainLabels)
}

// LeaveOneOut computes the leave-one-out training accuracy from the square
// train-by-train matrix, the paper's supervised tuning criterion.
func LeaveOneOut(w [][]float64, labels []int) float64 { return eval.LeaveOneOut(w, labels) }

// TestAccuracy evaluates a fixed measure on a dataset under a normalizer
// (nil = data as stored).
func TestAccuracy(m Measure, d *Dataset, n Normalizer) float64 {
	return eval.TestAccuracy(m, d, n)
}

// SupervisedAccuracy tunes the grid by leave-one-out on the training split
// and reports test accuracy with the selected candidate.
func SupervisedAccuracy(g Grid, d *Dataset, n Normalizer) (float64, Measure) {
	return eval.SupervisedAccuracy(g, d, n)
}

// Parameter grids of Table 4.
var (
	MSMGrid       = eval.MSMGrid
	DTWGrid       = eval.DTWGrid
	EDRGrid       = eval.EDRGrid
	LCSSGrid      = eval.LCSSGrid
	TWEGrid       = eval.TWEGrid
	SwaleGrid     = eval.SwaleGrid
	ERPGrid       = eval.ERPGrid
	MinkowskiGrid = eval.MinkowskiGrid
	KDTWGrid      = eval.KDTWGrid
	GAKGrid       = eval.GAKGrid
	SINKGrid      = eval.SINKGrid
	RBFGrid       = eval.RBFGrid
)

//
// ---- Statistics ----
//

// WilcoxonResult is the outcome of the paired signed-rank test.
type WilcoxonResult = stats.WilcoxonResult

// Wilcoxon runs the two-sided Wilcoxon signed-rank test on paired
// accuracies (the paper's pairwise comparison at 95%).
func Wilcoxon(x, y []float64) WilcoxonResult { return stats.Wilcoxon(x, y) }

// FriedmanResult is the outcome of the Friedman test with the Nemenyi
// critical difference.
type FriedmanResult = stats.FriedmanResult

// Friedman runs the Friedman test over an n-datasets-by-k-methods score
// matrix (the paper's multi-measure comparison at 90%).
func Friedman(scores [][]float64, alpha float64) FriedmanResult {
	return stats.Friedman(scores, alpha)
}

// CriticalDifferenceDiagram renders an ASCII critical-difference diagram.
func CriticalDifferenceDiagram(names []string, avgRanks []float64, cd float64) string {
	return stats.CDDiagram(names, avgRanks, cd)
}

//
// ---- Experiments (Tables 2-7, Figures 1-10) ----
//

// ExperimentOptions configures the table/figure drivers.
type ExperimentOptions = experiments.Options

// ComparisonTable is a rendered measure-vs-baseline table.
type ComparisonTable = experiments.Table

// MeasureRanking is a Friedman/Nemenyi ranking (a CD figure).
type MeasureRanking = experiments.Ranking

// RuntimePoint is one point of the Figure 9 accuracy-to-runtime scatter.
type RuntimePoint = experiments.RuntimePoint

// ConvergencePoint is one point of the Figure 10 error-vs-train-size
// curves.
type ConvergencePoint = experiments.ConvergencePoint

// Experiment drivers, one per table and figure of the paper.
var (
	Table2  = experiments.Table2
	Table3  = experiments.Table3
	Table4  = experiments.Table4
	Table5  = experiments.Table5
	Table6  = experiments.Table6
	Table7  = experiments.Table7
	Figure1 = experiments.Figure1
	Figure2 = experiments.Figure2
	Figure3 = experiments.Figure3
	Figure4 = experiments.Figure4
	Figure5 = experiments.Figure5
	Figure6 = experiments.Figure6
	Figure7 = experiments.Figure7
	Figure8 = experiments.Figure8
	Figure9 = experiments.Figure9
)

// Figure10 reproduces the error-vs-training-size experiment.
func Figure10(opts ExperimentOptions, maxTrain int, sizes []int) []ConvergencePoint {
	return experiments.Figure10(opts, maxTrain, sizes)
}

// RenderRuntime formats Figure 9 points.
func RenderRuntime(points []RuntimePoint) string { return experiments.RenderRuntime(points) }

// RenderConvergence formats Figure 10 points.
func RenderConvergence(points []ConvergencePoint) string {
	return experiments.RenderConvergence(points)
}

// DefaultArchive returns the reduced synthetic archive used by tests and
// benches; FullArchive returns the 128-dataset configuration.
var (
	DefaultArchive = experiments.DefaultArchive
	FullArchive    = experiments.FullArchive
)

//
// ---- Downstream tasks (clustering, querying, motifs, anomalies) ----
//

// KShapeConfig configures a k-Shape clustering run.
type KShapeConfig = kshape.Config

// KShapeResult holds a k-Shape clustering.
type KShapeResult = kshape.Result

// KShape clusters z-normalized series with the k-Shape algorithm
// (Paparrizos & Gravano 2015), the SBD-based clustering method Section 6
// of the paper credits for renewing interest in sliding measures.
func KShape(series [][]float64, cfg KShapeConfig) KShapeResult {
	return kshape.Run(series, cfg)
}

// KShapeRestarts runs k-Shape from several initializations and keeps the
// tightest clustering (lowest sum of SBD to centroids).
func KShapeRestarts(series [][]float64, cfg KShapeConfig, restarts int) KShapeResult {
	return kshape.RunRestarts(series, cfg, restarts)
}

// RandIndex scores agreement between two labelings (1 = identical
// partitions).
func RandIndex(a, b []int) float64 { return kshape.RandIndex(a, b) }

// AdjustedRandIndex scores chance-corrected agreement between two
// labelings.
func AdjustedRandIndex(a, b []int) float64 { return kshape.AdjustedRandIndex(a, b) }

// SubsequenceMatch is one subsequence-search hit.
type SubsequenceMatch = subsequence.Match

// DistanceProfile computes the z-normalized ED between query q and every
// subsequence of t via the FFT-based MASS algorithm, O(n log n).
func DistanceProfile(t, q []float64) []float64 { return subsequence.DistanceProfile(t, q) }

// TopKMatches returns the k best non-overlapping matches of q in t.
func TopKMatches(t, q []float64, k int) []SubsequenceMatch { return subsequence.TopK(t, q, k) }

// MatrixProfile computes the self-join matrix profile of t for window w:
// each subsequence's z-normalized distance to its nearest non-trivial
// neighbor, the primitive behind motif discovery and anomaly detection.
// It runs on the STOMP streaming engine (internal/profile), O(n^2) total
// work instead of STAMP's O(n^2 log n).
func MatrixProfile(t []float64, w int) (profile []float64, index []int) {
	return subsequence.MatrixProfile(t, w)
}

// ABMatrixProfile computes the AB-join matrix profile: for each window of
// a, its z-normalized distance to the nearest window of b, with no
// exclusion zone (the two series are distinct by assumption).
func ABMatrixProfile(a, b []float64, w int) (profile []float64, index []int) {
	return subsequence.ABProfile(a, b, w)
}

// Motif returns the best motif pair of t for window w, or (-1, -1, +Inf)
// when no window has a valid non-trivial neighbor.
func Motif(t []float64, w int) (i, j int, dist float64) { return subsequence.Motif(t, w) }

// Discord returns the top anomaly of t for window w, or (-1, +Inf) when
// every profile entry is undefined (e.g. the exclusion zone covers all
// neighbors).
func Discord(t []float64, w int) (offset int, dist float64) { return subsequence.Discord(t, w) }

//
// ---- Indexing (the M2 theme: which measures are indexable) ----
//

// PAA computes the piecewise aggregate approximation of x.
func PAA(x []float64, segments int) []float64 { return index.PAA(x, segments) }

// LBPAA returns the PAA lower bound of the Euclidean distance.
func LBPAA(a, b []float64, m int) float64 { return index.LBPAA(a, b, m) }

// EDIndex is a GEMINI-style filter-and-refine Euclidean 1-NN index.
type EDIndex = index.EDIndex

// IndexStats reports the work performed by an index search.
type IndexStats = index.Stats

// NewEDIndex builds a PAA-lower-bounded Euclidean index over the
// references.
func NewEDIndex(refs [][]float64, segments int) *EDIndex { return index.NewEDIndex(refs, segments) }

// VPTree is an exact metric index usable with the paper's metric elastic
// measures (MSM, ERP, TWE) as well as ED.
type VPTree = index.VPTree

// NewVPTree builds a vantage-point tree over the references under a metric
// measure.
func NewVPTree(refs [][]float64, m Measure, seed int64) *VPTree {
	return index.NewVPTree(refs, m, seed)
}

// Neighbor is one k-NN result: a reference index and its sanitized
// distance (NaN mapped to +Inf so undefined pairs rank last).
type Neighbor = index.Neighbor

// ANNConfig parameterizes the approximate retrieval engine: embedding
// dimension, SINK gamma, the candidate budget (the recall knob; 0 =
// adaptive default, >= corpus size = exact fallback), and the seed.
type ANNConfig = ann.Config

// ANNIndex is a fitted GRAIL embed-index-rerank structure: corpus series
// are embedded once and indexed in a k-NN VP-tree; queries re-rank the
// top-c embedding-space candidates with the exact measure. Immutable and
// safe for concurrent use through per-goroutine Queriers.
type ANNIndex = ann.Index

// BuildANN fits the embedder on refs and builds the approximate index
// for queries under m.
func BuildANN(refs [][]float64, m Measure, cfg ANNConfig) *ANNIndex {
	return ann.Build(refs, m, cfg)
}

// ApproxResult is the outcome of an approximate search: per-query
// nearest indices with exact distances, plus work counters.
type ApproxResult = search.ApproxResult

// OneNNApprox answers every query with its approximate nearest reference
// under m: only the candidate set is approximate, reported distances are
// exact, and candidate budgets covering the corpus make the result
// identical to exact search.
func OneNNApprox(m Measure, queries, refs [][]float64, cfg ANNConfig) ApproxResult {
	return search.OneNNApprox(m, queries, refs, cfg)
}

// KNNApprox answers every query with its approximate k nearest
// references, sorted by (exact distance, index).
func KNNApprox(m Measure, queries, refs [][]float64, k int, cfg ANNConfig) ApproxResult {
	return search.KNNApprox(m, queries, refs, k, cfg)
}

// SAX is the symbolic aggregate approximation scheme with its MINDIST
// lower bound (the representation behind iSAX).
type SAX = index.SAX

// ISAX is the iSAX tree index (Shieh & Keogh): approximate search in one
// leaf visit, exact search via best-first MINDIST traversal.
type ISAX = index.ISAX

// NewISAX builds an empty iSAX index for z-normalized series of length m.
func NewISAX(m, segments, leafCapacity int) *ISAX {
	return index.NewISAX(m, segments, leafCapacity)
}

// NewSAX builds a SAX scheme with the given PAA segments and alphabet size
// (2..16).
func NewSAX(segments, alphabet int) *SAX { return index.NewSAX(segments, alphabet) }

// DFTCoefficients returns the first k normalized Fourier coefficients of x
// for the GEMINI lower bound.
func DFTCoefficients(x []float64, k int) []complex128 { return index.DFTCoefficients(x, k) }

// DFTLowerBound returns the Fourier lower bound of ED from truncated
// coefficient sets.
func DFTLowerBound(a, b []complex128) float64 { return index.DFTLowerBound(a, b) }

//
// ---- Multivariate extension (the paper's footnote-1 future work) ----
//

// MVSeries is a multivariate time series: MVSeries[t][c] is channel c at
// time t.
type MVSeries = multivariate.Series

// MVMeasure is a dissimilarity over multivariate series.
type MVMeasure = multivariate.Measure

// MVEuclidean returns the vector lock-step Euclidean distance.
func MVEuclidean() MVMeasure { return multivariate.Euclidean{} }

// MVDTWDependent returns multivariate DTW with one shared warping path
// over vector points (DTW-D).
func MVDTWDependent(deltaPercent int) MVMeasure {
	return multivariate.DTWDependent{DeltaPercent: deltaPercent}
}

// MVDTWIndependent returns multivariate DTW with one warping path per
// channel (DTW-I).
func MVDTWIndependent(deltaPercent int) MVMeasure {
	return multivariate.DTWIndependent{DeltaPercent: deltaPercent}
}

// MVIndependent lifts any univariate measure to multivariate series by
// summing it over channels.
func MVIndependent(base Measure) MVMeasure { return multivariate.Independent{Base: base} }

// MVERPDependent returns multivariate ERP with one warping path over
// vector points (L1 point and gap costs); unequal lengths are supported.
func MVERPDependent(g float64) MVMeasure { return multivariate.ERPDependent{G: g} }

// MVMSMDependent returns multivariate Move-Split-Merge with one warping
// path over vector points; unequal lengths are supported.
func MVMSMDependent(c float64) MVMeasure { return multivariate.MSMDependent{C: c} }

// MVMaskedEuclidean returns the NaN-masked vector Euclidean distance with
// valid-pair normalization and the given per-channel minimum-support
// fraction (NaN marks a missing sample).
func MVMaskedEuclidean(minSupport float64) MVMeasure { return multivariate.MaskedEuclidean(minSupport) }

// MVMaskedManhattan returns the NaN-masked per-channel Manhattan distance
// with valid-pair normalization and the given minimum-support fraction.
func MVMaskedManhattan(minSupport float64) MVMeasure { return multivariate.MaskedManhattan(minSupport) }

// MVSoftDTW returns multivariate soft-DTW with temperature gamma; with
// normalize set, distances are self-distance normalized so identical
// series score zero.
func MVSoftDTW(gamma float64, normalize bool) MVMeasure {
	return multivariate.SoftDTW{Gamma: gamma, Normalize: normalize}
}

// MVOneNN runs the 1-NN evaluation over multivariate splits. An empty
// train set predicts no labels (accuracy 0) rather than panicking.
func MVOneNN(m MVMeasure, train []MVSeries, trainLabels []int, test []MVSeries, testLabels []int) float64 {
	return multivariate.OneNN(m, train, trainLabels, test, testLabels)
}

// MVClassify finds each test series' nearest train series under m, in
// parallel with cooperative cancellation. An empty train set yields
// (-1, +Inf) per query.
func MVClassify(ctx context.Context, m MVMeasure, train, test []MVSeries) ([]int, []float64, error) {
	return multivariate.Classify(ctx, m, train, test)
}

//
// ---- Uncertain extension (the paper's footnote-1 future work) ----
//

// UncertainSeries is a series whose observations carry Gaussian error
// estimates.
type UncertainSeries = uncertain.Series

// UncertainFromCertain wraps an exact series with zero uncertainty.
func UncertainFromCertain(x []float64) UncertainSeries { return uncertain.FromCertain(x) }

// UncertainExpectedED returns the square root of the expected squared
// Euclidean distance under independent Gaussian errors.
func UncertainExpectedED(x, y UncertainSeries) float64 { return uncertain.ExpectedED(x, y) }

// UncertainDUST returns the uncertainty-normalized DUST-style
// dissimilarity.
func UncertainDUST(x, y UncertainSeries, eps float64) float64 { return uncertain.DUST(x, y, eps) }

// UncertainProbCloser estimates P(dist(q, a) < dist(q, b)) under the
// Gaussian error model.
func UncertainProbCloser(q, a, b UncertainSeries) float64 { return uncertain.ProbCloser(q, a, b) }

// UncertainOneNN runs expected-distance 1-NN over uncertain splits.
func UncertainOneNN(train []UncertainSeries, trainLabels []int, test []UncertainSeries, testLabels []int) float64 {
	return uncertain.OneNN(train, trainLabels, test, testLabels)
}

//
// ---- Multiple-comparison corrections ----
//

// HolmCorrection applies the Holm step-down correction to a family of
// p-values, returning per-hypothesis rejection decisions.
func HolmCorrection(pvalues []float64, alpha float64) []bool {
	return stats.HolmCorrection(pvalues, alpha)
}

// BonferroniCorrection applies the Bonferroni correction.
func BonferroniCorrection(pvalues []float64, alpha float64) []bool {
	return stats.BonferroniCorrection(pvalues, alpha)
}
