// Command tsreport renders the structured JSON written by `tsbench -json`
// into a standalone HTML page — the repository's analogue of the results
// website the paper publishes alongside its evaluation.
//
// Usage:
//
//	tsbench -count 128 -json results.json all
//	tsreport -in results.json -out results.html
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html"
	"os"
	"sort"
	"strings"
)

func main() {
	in := flag.String("in", "", "JSON file written by tsbench -json")
	out := flag.String("out", "", "output HTML file (default: stdout)")
	title := flag.String("title", "Time-Series Distance Measures — Reproduction Results", "page title")
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "tsreport: need -in FILE")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsreport: %v\n", err)
		os.Exit(1)
	}
	var results map[string]any
	if err := json.Unmarshal(data, &results); err != nil {
		fmt.Fprintf(os.Stderr, "tsreport: parse %s: %v\n", *in, err)
		os.Exit(1)
	}
	page := Render(*title, results)
	if *out == "" {
		fmt.Print(page)
		return
	}
	if err := os.WriteFile(*out, []byte(page), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "tsreport: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("tsreport: wrote %s\n", *out)
}

// Render builds the full HTML page from the decoded results map.
func Render(title string, results map[string]any) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", html.EscapeString(title))
	b.WriteString(`<style>
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a1a1a; }
h1 { border-bottom: 2px solid #444; padding-bottom: .3rem; }
h2 { margin-top: 2.5rem; color: #234; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; }
th { background: #eef; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.better { background: #e8f7e8; }
tr.worse { background: #fbeaea; }
pre { background: #f6f6f6; padding: .8rem; overflow-x: auto; font-size: .8rem; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))

	names := make([]string, 0, len(results))
	for k := range results {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "<h2>%s</h2>\n", html.EscapeString(name))
		b.WriteString(renderValue(results[name]))
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// renderValue dispatches on the decoded JSON shape: comparison tables,
// rankings, runtime/convergence point lists, or plain text.
func renderValue(v any) string {
	switch t := v.(type) {
	case string:
		return "<pre>" + html.EscapeString(t) + "</pre>\n"
	case map[string]any:
		if _, ok := t["Rows"]; ok {
			return renderTable(t)
		}
		if _, ok := t["Friedman"]; ok {
			return renderRanking(t)
		}
	case []any:
		if len(t) > 0 {
			if first, ok := t[0].(map[string]any); ok {
				if _, isRuntime := first["Inference"]; isRuntime {
					return renderPoints(t, []string{"Measure", "Class", "AvgAcc", "Inference"})
				}
				if _, isConv := first["TrainSize"]; isConv {
					return renderPoints(t, []string{"Measure", "TrainSize", "Error"})
				}
				if _, isSVM := first["Kernel"]; isSVM {
					return renderPoints(t, []string{"Kernel", "OneNNAcc", "SVMAcc"})
				}
			}
		}
	}
	raw, _ := json.MarshalIndent(v, "", "  ")
	return "<pre>" + html.EscapeString(string(raw)) + "</pre>\n"
}

func renderTable(t map[string]any) string {
	var b strings.Builder
	if title, ok := t["Title"].(string); ok {
		fmt.Fprintf(&b, "<p><em>%s</em></p>\n", html.EscapeString(title))
	}
	b.WriteString("<table><tr><th>Measure</th><th>Scaling</th><th>Better</th><th>AvgAcc</th><th>&gt;</th><th>=</th><th>&lt;</th><th>p-value</th></tr>\n")
	rows, _ := t["Rows"].([]any)
	for _, rv := range rows {
		r, ok := rv.(map[string]any)
		if !ok {
			continue
		}
		class := ""
		marker := "–"
		if better, _ := r["Better"].(bool); better {
			class, marker = " class=\"better\"", "yes"
		} else if worse, _ := r["Worse"].(bool); worse {
			class, marker = " class=\"worse\"", "worse"
		}
		fmt.Fprintf(&b, "<tr%s><td>%s</td><td>%s</td><td>%s</td><td class=\"num\">%.4f</td><td class=\"num\">%.0f</td><td class=\"num\">%.0f</td><td class=\"num\">%.0f</td><td class=\"num\">%.4f</td></tr>\n",
			class,
			html.EscapeString(str(r["Measure"])), html.EscapeString(str(r["Scaling"])), marker,
			num(r["AvgAcc"]), num(r["Wins"]), num(r["Ties"]), num(r["Losses"]), num(r["PValue"]))
	}
	if base, ok := t["Baseline"].(map[string]any); ok {
		mean := meanOf(base["Accs"])
		fmt.Fprintf(&b, "<tr><td><strong>%s</strong> (baseline)</td><td>%s</td><td>–</td><td class=\"num\">%.4f</td><td>–</td><td>–</td><td>–</td><td>–</td></tr>\n",
			html.EscapeString(str(base["Measure"])), html.EscapeString(str(base["Scaling"])), mean)
	}
	b.WriteString("</table>\n")
	return b.String()
}

func renderRanking(t map[string]any) string {
	var b strings.Builder
	if title, ok := t["Title"].(string); ok {
		fmt.Fprintf(&b, "<p><em>%s</em></p>\n", html.EscapeString(title))
	}
	fr, _ := t["Friedman"].(map[string]any)
	names, _ := t["Names"].([]any)
	ranks, _ := fr["AvgRanks"].([]any)
	type pair struct {
		name string
		rank float64
	}
	pairs := make([]pair, 0, len(names))
	for i := range names {
		if i < len(ranks) {
			pairs = append(pairs, pair{str(names[i]), num(ranks[i])})
		}
	}
	sort.Slice(pairs, func(a, c int) bool { return pairs[a].rank < pairs[c].rank })
	fmt.Fprintf(&b, "<p>Friedman χ² = %.3f, p = %.4f, significant = %v; Nemenyi CD = %.4f</p>\n",
		num(fr["ChiSq"]), num(fr["PValue"]), fr["Significant"], num(fr["CriticalDiff"]))
	b.WriteString("<table><tr><th>Rank</th><th>Method</th><th>Average rank</th></tr>\n")
	for i, p := range pairs {
		fmt.Fprintf(&b, "<tr><td class=\"num\">%d</td><td>%s</td><td class=\"num\">%.3f</td></tr>\n",
			i+1, html.EscapeString(p.name), p.rank)
	}
	b.WriteString("</table>\n")
	return b.String()
}

func renderPoints(points []any, cols []string) string {
	var b strings.Builder
	b.WriteString("<table><tr>")
	for _, c := range cols {
		fmt.Fprintf(&b, "<th>%s</th>", html.EscapeString(c))
	}
	b.WriteString("</tr>\n")
	for _, pv := range points {
		p, ok := pv.(map[string]any)
		if !ok {
			continue
		}
		b.WriteString("<tr>")
		for _, c := range cols {
			switch val := p[c].(type) {
			case string:
				fmt.Fprintf(&b, "<td>%s</td>", html.EscapeString(val))
			case float64:
				if c == "Inference" {
					// Nanoseconds from time.Duration JSON encoding.
					fmt.Fprintf(&b, "<td class=\"num\">%.1f ms</td>", val/1e6)
				} else if val == float64(int64(val)) && c == "TrainSize" {
					fmt.Fprintf(&b, "<td class=\"num\">%d</td>", int64(val))
				} else {
					fmt.Fprintf(&b, "<td class=\"num\">%.4f</td>", val)
				}
			default:
				fmt.Fprintf(&b, "<td>%v</td>", val)
			}
		}
		b.WriteString("</tr>\n")
	}
	b.WriteString("</table>\n")
	return b.String()
}

func str(v any) string {
	s, _ := v.(string)
	return s
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}

func meanOf(v any) float64 {
	arr, ok := v.([]any)
	if !ok || len(arr) == 0 {
		return 0
	}
	var s float64
	for _, x := range arr {
		s += num(x)
	}
	return s / float64(len(arr))
}
