package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRenderTableSection(t *testing.T) {
	raw := `{
	  "table5": {
	    "Title": "Table 5: elastic measures vs NCCc",
	    "Baseline": {"Measure": "nccc", "Scaling": "-", "Accs": [0.8, 0.9]},
	    "Rows": [
	      {"Measure": "msm[c=0.5]", "Scaling": "fixed", "Better": true,
	       "Worse": false, "AvgAcc": 0.95, "Wins": 10, "Ties": 1, "Losses": 1,
	       "PValue": 0.001}
	    ]
	  }
	}`
	var results map[string]any
	if err := json.Unmarshal([]byte(raw), &results); err != nil {
		t.Fatal(err)
	}
	page := Render("Test Report", results)
	for _, want := range []string{
		"<h1>Test Report</h1>", "table5", "msm[c=0.5]", "0.9500",
		"class=\"better\"", "nccc", "0.8500", "<table>",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestRenderRankingSection(t *testing.T) {
	raw := `{
	  "figure6": {
	    "Title": "Figure 6",
	    "Names": ["twe/fixed", "nccc/-"],
	    "Friedman": {"ChiSq": 12.5, "PValue": 0.001, "Significant": true,
	                 "CriticalDiff": 0.9, "AvgRanks": [1.5, 2.5]}
	  }
	}`
	var results map[string]any
	if err := json.Unmarshal([]byte(raw), &results); err != nil {
		t.Fatal(err)
	}
	page := Render("R", results)
	for _, want := range []string{"twe/fixed", "Friedman", "12.500", "0.9000", "1.500"} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
	// Best rank listed first.
	if strings.Index(page, "twe/fixed") > strings.Index(page, "nccc/-") {
		t.Error("ranking rows not sorted by rank")
	}
}

func TestRenderPointsAndText(t *testing.T) {
	raw := `{
	  "figure9": [
	    {"Measure": "euclidean", "Class": "O(m)", "AvgAcc": 0.74, "Inference": 3911412}
	  ],
	  "figure10": [
	    {"Measure": "euclidean", "TrainSize": 8, "Error": 0.69}
	  ],
	  "svm": [
	    {"Kernel": "sink[g=5]", "OneNNAcc": 0.87, "SVMAcc": 0.89}
	  ],
	  "figure1": "ascii art here"
	}`
	var results map[string]any
	if err := json.Unmarshal([]byte(raw), &results); err != nil {
		t.Fatal(err)
	}
	page := Render("R", results)
	for _, want := range []string{
		"euclidean", "3.9 ms", "TrainSize", ">8<", "sink[g=5]",
		"<pre>ascii art here</pre>",
	} {
		if !strings.Contains(page, want) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestRenderUnknownShapeFallsBackToJSON(t *testing.T) {
	results := map[string]any{"odd": map[string]any{"Weird": 1.0}}
	page := Render("R", results)
	if !strings.Contains(page, "Weird") {
		t.Error("unknown shapes should fall back to raw JSON")
	}
}

func TestRenderEscapesHTML(t *testing.T) {
	results := map[string]any{"x": "<script>alert(1)</script>"}
	page := Render("<b>T</b>", results)
	if strings.Contains(page, "<script>") {
		t.Error("content not escaped")
	}
	if strings.Contains(page, "<b>T</b>") {
		t.Error("title not escaped")
	}
}
