// Command tsclassify runs the 1-NN classifier of the paper's evaluation
// framework on one dataset with a chosen distance measure.
//
// Usage:
//
//	tsclassify -measure NAME [-norm NAME] [-supervised] [-archive DIR -dataset NAME]
//
// Without -archive, a synthetic demo dataset is generated. The -measure
// flag accepts any registry name (run with -list to see them); -supervised
// tunes the measure's Table 4 grid by leave-one-out on the training split.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/embedding"
	"repro/internal/eval"
	"repro/internal/norm"
)

func main() {
	measureName := flag.String("measure", "euclidean", "measure registry name")
	normName := flag.String("norm", "", "normalization (zscore, minmax, ...); empty = data as stored")
	supervised := flag.Bool("supervised", false, "tune the Table 4 grid by leave-one-out")
	archiveDir := flag.String("archive", "", "UCR archive directory")
	datasetName := flag.String("dataset", "", "dataset name under -archive")
	list := flag.Bool("list", false, "list registered measures and exit")
	seed := flag.Int64("seed", 1, "seed for the demo dataset / embeddings")
	flag.Parse()

	if *list {
		for _, c := range core.Categories() {
			fmt.Printf("%s:\n", c)
			for _, e := range core.ByCategory(c) {
				fmt.Printf("  %s\n", e.Name)
			}
		}
		return
	}

	d, err := loadDataset(*archiveDir, *datasetName, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsclassify: %v\n", err)
		os.Exit(1)
	}

	var n norm.Normalizer
	if *normName != "" {
		if n = norm.ByName(*normName); n == nil {
			fmt.Fprintf(os.Stderr, "tsclassify: unknown normalization %q\n", *normName)
			os.Exit(2)
		}
	}

	entry, err := core.Lookup(*measureName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsclassify: %v\n", err)
		os.Exit(2)
	}

	switch {
	case entry.Category == core.Embedding:
		e, err := core.NewEmbedder(entry.Name, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsclassify: %v\n", err)
			os.Exit(2)
		}
		nd := eval.Normalize(d, n)
		e.Fit(nd.Train)
		m := embedding.Measure{E: e}
		acc := eval.TestAccuracy(m, nd, nil)
		fmt.Printf("dataset=%s measure=%s protocol=fit/train accuracy=%.4f\n", d.Name, m.Name(), acc)
	case *supervised:
		if len(entry.Grid.Candidates) == 0 {
			fmt.Fprintf(os.Stderr, "tsclassify: %s is parameter-free; drop -supervised\n", entry.Name)
			os.Exit(2)
		}
		acc, chosen := eval.SupervisedAccuracy(entry.Grid, d, n)
		fmt.Printf("dataset=%s measure=%s protocol=loocv chosen=%s accuracy=%.4f\n",
			d.Name, entry.Name, chosen.Name(), acc)
	default:
		acc := eval.TestAccuracy(entry.Measure, d, n)
		fmt.Printf("dataset=%s measure=%s protocol=fixed accuracy=%.4f\n", d.Name, entry.Measure.Name(), acc)
	}
}

func loadDataset(dir, name string, seed int64) (*dataset.Dataset, error) {
	if dir != "" {
		if name == "" {
			return nil, fmt.Errorf("-archive requires -dataset")
		}
		d, err := dataset.LoadUCR(dir, name)
		if err != nil {
			return nil, err
		}
		return d.ZNormalizeAll(), nil
	}
	return dataset.Generate(dataset.Config{
		Name: "Demo", Family: dataset.FamilyECG, Length: 128,
		NumClasses: 3, TrainSize: 24, TestSize: 48, Seed: seed,
		NoiseSigma: 0.25, ShiftFrac: 0.12, WarpFrac: 0.08, AmpJitter: 0.2,
	}), nil
}
