package main

import (
	"testing"

	"repro/internal/dataset"
)

func TestLoadDatasetSynthetic(t *testing.T) {
	d, err := loadDataset("", "", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Name != "Demo" || len(d.Train) != 24 {
		t.Fatalf("demo dataset shape: %s train=%d", d.Name, len(d.Train))
	}
	// Deterministic for a fixed seed.
	d2, _ := loadDataset("", "", 1)
	if d.Train[0][0] != d2.Train[0][0] {
		t.Fatal("demo dataset not deterministic")
	}
}

func TestLoadDatasetFromArchive(t *testing.T) {
	dir := t.TempDir()
	src := dataset.Generate(dataset.Config{
		Name: "FromDisk", Family: dataset.FamilyShapes, Length: 24,
		NumClasses: 2, TrainSize: 4, TestSize: 4, Seed: 3, NoiseSigma: 0.1,
	})
	if err := dataset.SaveUCR(dir, src); err != nil {
		t.Fatal(err)
	}
	d, err := loadDataset(dir, "FromDisk", 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Length() != 24 || len(d.Test) != 4 {
		t.Fatalf("loaded shape: len=%d test=%d", d.Length(), len(d.Test))
	}
}

func TestLoadDatasetArchiveRequiresName(t *testing.T) {
	if _, err := loadDataset(t.TempDir(), "", 1); err == nil {
		t.Fatal("expected error when -archive given without -dataset")
	}
}

func TestLoadDatasetMissingDataset(t *testing.T) {
	if _, err := loadDataset(t.TempDir(), "Nope", 1); err == nil {
		t.Fatal("expected error for missing dataset")
	}
}
