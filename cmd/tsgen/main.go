// Command tsgen generates the deterministic synthetic archive (the
// offline stand-in for the UCR Time-Series Archive) and writes it in the
// UCR directory layout, or prints a summary of its composition.
//
// Usage:
//
//	tsgen -out DIR [-count N] [-seed N] [-maxlen N] [-maxtrain N] [-maxtest N]
//	tsgen -inspect [-count N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
)

func main() {
	out := flag.String("out", "", "output directory (UCR layout); empty with -inspect")
	count := flag.Int("count", 128, "number of datasets")
	seed := flag.Int64("seed", 1, "archive seed")
	maxLen := flag.Int("maxlen", 0, "cap on series length (0 = default 512)")
	maxTrain := flag.Int("maxtrain", 0, "cap on training size (0 = default 64)")
	maxTest := flag.Int("maxtest", 0, "cap on test size (0 = default 128)")
	inspect := flag.Bool("inspect", false, "print a summary instead of writing files")
	flag.Parse()

	if *out == "" && !*inspect {
		fmt.Fprintln(os.Stderr, "tsgen: need -out DIR or -inspect")
		os.Exit(2)
	}

	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: *seed, Count: *count,
		MaxLength: *maxLen, MaxTrain: *maxTrain, MaxTest: *maxTest,
	})

	if *inspect {
		fmt.Printf("%-22s %-8s %-7s %-7s %-7s %-8s\n", "Name", "Length", "Train", "Test", "Classes", "Valid")
		for _, d := range archive {
			valid := "yes"
			if err := d.Validate(); err != nil {
				valid = err.Error()
			}
			fmt.Printf("%-22s %-8d %-7d %-7d %-7d %-8s\n",
				d.Name, d.Length(), len(d.Train), len(d.Test), d.NumClasses(), valid)
		}
		return
	}

	for _, d := range archive {
		if err := dataset.SaveUCR(*out, d); err != nil {
			fmt.Fprintf(os.Stderr, "tsgen: write %s: %v\n", d.Name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("tsgen: wrote %d datasets to %s\n", len(archive), *out)
}
