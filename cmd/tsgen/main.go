// Command tsgen generates the deterministic synthetic archive (the
// offline stand-in for the UCR Time-Series Archive) and writes it in the
// UCR directory layout, or prints a summary of its composition. With -mv
// it instead emits multivariate coupled-harmonic panels in the wide
// multivariate layout, with configurable channel count and missingness.
//
// Usage:
//
//	tsgen -out DIR [-count N] [-seed N] [-maxlen N] [-maxtrain N] [-maxtest N]
//	tsgen -inspect [-count N] [-seed N]
//	tsgen -mv -out DIR [-count N] [-seed N] [-mvchannels D] [-mvmissing F]
//	tsgen -mv -inspect [-count N] [-seed N] [-mvchannels D] [-mvmissing F]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/dataset"
	"repro/internal/multivariate"
)

func main() {
	out := flag.String("out", "", "output directory (UCR layout); empty with -inspect")
	count := flag.Int("count", 128, "number of datasets")
	seed := flag.Int64("seed", 1, "archive seed")
	maxLen := flag.Int("maxlen", 0, "cap on series length (0 = default 512)")
	maxTrain := flag.Int("maxtrain", 0, "cap on training size (0 = default 64)")
	maxTest := flag.Int("maxtest", 0, "cap on test size (0 = default 128)")
	inspect := flag.Bool("inspect", false, "print a summary instead of writing files")
	mv := flag.Bool("mv", false, "generate multivariate panels instead of the univariate archive")
	mvChannels := flag.Int("mvchannels", 3, "channel count of -mv panels")
	mvMissing := flag.Float64("mvmissing", 0, "fraction of -mv samples masked as missing (NaN), in [0, 1)")
	flag.Parse()

	if *out == "" && !*inspect {
		fmt.Fprintln(os.Stderr, "tsgen: need -out DIR or -inspect")
		os.Exit(2)
	}

	if *mv {
		runMV(*out, *count, *seed, *mvChannels, *mvMissing, *inspect)
		return
	}

	archive := dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: *seed, Count: *count,
		MaxLength: *maxLen, MaxTrain: *maxTrain, MaxTest: *maxTest,
	})

	if *inspect {
		fmt.Printf("%-22s %-8s %-7s %-7s %-7s %-8s\n", "Name", "Length", "Train", "Test", "Classes", "Valid")
		for _, d := range archive {
			valid := "yes"
			if err := d.Validate(); err != nil {
				valid = err.Error()
			}
			fmt.Printf("%-22s %-8d %-7d %-7d %-7d %-8s\n",
				d.Name, d.Length(), len(d.Train), len(d.Test), d.NumClasses(), valid)
		}
		return
	}

	for _, d := range archive {
		if err := dataset.SaveUCR(*out, d); err != nil {
			fmt.Fprintf(os.Stderr, "tsgen: write %s: %v\n", d.Name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("tsgen: wrote %d datasets to %s\n", len(archive), *out)
}

// runMV generates count multivariate coupled-harmonic panels with varied
// lengths and class counts, all at the requested channel count and
// missingness, and writes them in the wide multivariate layout (or prints
// the composition with -inspect).
func runMV(out string, count int, seed int64, channels int, missing float64, inspect bool) {
	if channels < 1 || missing < 0 || missing >= 1 {
		fmt.Fprintln(os.Stderr, "tsgen: -mvchannels must be >= 1 and -mvmissing in [0, 1)")
		os.Exit(2)
	}
	lengths := []int{32, 48, 64, 96, 128}
	classes := []int{2, 3, 4}
	sets := make([]*multivariate.Dataset, 0, count)
	for i := 0; i < count; i++ {
		nc := classes[i%len(classes)]
		sets = append(sets, multivariate.Generate(multivariate.GenConfig{
			Name:       fmt.Sprintf("MVSynthetic%03d", i),
			Length:     lengths[i%len(lengths)],
			Channels:   channels,
			NumClasses: nc,
			TrainSize:  nc * (4 + i%3),
			TestSize:   nc * 4,
			Seed:       seed + int64(i)*7919,
			NoiseSigma: 0.15 + 0.05*float64(i%4),
			WarpFrac:   0.04 + 0.02*float64(i%3),
			PhaseShift: i%2 == 0,

			MissingFrac: missing,
		}))
	}

	if inspect {
		fmt.Printf("%-18s %-8s %-9s %-7s %-7s %-8s %s\n",
			"Name", "Length", "Channels", "Train", "Test", "Classes", "Missing")
		for _, d := range sets {
			total, miss := 0, 0
			for _, split := range [][]multivariate.Series{d.Train, d.Test} {
				for _, s := range split {
					for t := range s {
						for _, v := range s[t] {
							total++
							if math.IsNaN(v) {
								miss++
							}
						}
					}
				}
			}
			nc := map[int]bool{}
			for _, l := range d.TrainLabels {
				nc[l] = true
			}
			fmt.Printf("%-18s %-8d %-9d %-7d %-7d %-8d %.1f%%\n",
				d.Name, len(d.Train[0]), d.Train[0].Channels(),
				len(d.Train), len(d.Test), len(nc), 100*float64(miss)/float64(total))
		}
		return
	}

	for _, d := range sets {
		if err := dataset.SaveMVUCR(out, d); err != nil {
			fmt.Fprintf(os.Stderr, "tsgen: write %s: %v\n", d.Name, err)
			os.Exit(1)
		}
	}
	fmt.Printf("tsgen: wrote %d multivariate datasets to %s\n", len(sets), out)
}
