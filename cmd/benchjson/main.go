// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON array of {name, ns_per_op, bytes_per_op, allocs_per_op}
// records. The raw benchmark lines are echoed to stdout unchanged so the
// command can sit at the end of a pipeline without hiding the run; the
// JSON goes to the file named by -o (or stdout when -o is empty).
//
// When a benchmark name repeats (a `go test -count=N` run), the record
// keeps the minimum ns/op across repetitions: co-tenant interference on
// shared machines only ever adds time, so min-of-N estimates the
// benchmark's true cost far more stably than any single sample — this is
// what makes the bench-compare regression gate usable on noisy hosts.
//
// Usage:
//
//	go test -bench GridTuning -count=3 -benchmem ./internal/search | benchjson -o BENCH_tuning.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
)

// Record is one benchmark result. GOMAXPROCS suffixes are stripped from
// the name so committed files do not encode the build machine's core
// count; the measured values, of course, still do.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// benchLineRE matches the tabular result line `go test -bench` prints:
// name, iteration count, ns/op, and optionally the -benchmem columns.
var benchLineRE = regexp.MustCompile(
	`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+(\d+(?:\.\d+)?) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("o", "", "write the JSON array to this file (default stdout)")
	flag.Parse()

	var records []Record
	index := map[string]int{} // name -> position in records
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		m := benchLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		rec := Record{Name: m[1], Iterations: iters, NsPerOp: ns}
		if m[5] != "" {
			rec.BytesPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if m[6] != "" {
			rec.AllocsPerOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		if at, seen := index[rec.Name]; seen {
			if rec.NsPerOp < records[at].NsPerOp {
				records[at] = rec
			}
			continue
		}
		index[rec.Name] = len(records)
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}
	if len(records) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}

	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	fmt.Printf("[benchmark results written to %s]\n", *out)
}
