package main

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func tinyOpts() experiments.Options {
	return experiments.Options{
		Archive: dataset.GenerateArchive(dataset.ArchiveOptions{
			Seed: 2, Count: 5, MaxLength: 40, MaxTrain: 8, MaxTest: 10,
		}),
		GridStride: 10,
	}
}

func TestRunDispatchesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment driver")
	}
	opts := tinyOpts()
	for _, name := range experimentOrder {
		out, structured, err := run(name, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if out == "" {
			t.Errorf("%s: empty rendering", name)
		}
		if structured == nil {
			t.Errorf("%s: no structured result", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, _, err := run("table99", tinyOpts()); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	out, _, err := run("Figure3", tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Lorentzian") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestExperimentOrderCoversAllArtifacts(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table6", "table7",
		"figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
		"figure7", "figure8", "figure9", "figure10", "svm", "pruning",
		"tuning", "spectral",
	}
	have := map[string]bool{}
	for _, e := range experimentOrder {
		have[e] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("experimentOrder missing %s", w)
		}
	}
	if len(experimentOrder) != len(want) {
		t.Errorf("experimentOrder has %d entries, want %d", len(experimentOrder), len(want))
	}
}
