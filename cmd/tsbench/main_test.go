package main

import (
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/run"
)

func tinyOpts() experiments.Options {
	return experiments.Options{
		Archive: dataset.GenerateArchive(dataset.ArchiveOptions{
			Seed: 2, Count: 5, MaxLength: 40, MaxTrain: 8, MaxTest: 10,
		}),
		GridStride: 10,
	}
}

func TestRunDispatchesEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment driver")
	}
	opts := tinyOpts()
	for _, name := range run.Default.Names() {
		res, err := runExperiment(context.Background(), name, opts, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Text == "" {
			t.Errorf("%s: empty rendering", name)
		}
		if res.Structured == nil {
			t.Errorf("%s: no structured result", name)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := runExperiment(context.Background(), "table99", tinyOpts(), nil); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestRunCaseInsensitive(t *testing.T) {
	res, err := runExperiment(context.Background(), "Figure3", tinyOpts(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Lorentzian") {
		t.Errorf("unexpected output:\n%s", res.Text)
	}
}

func TestRegistryCoversAllArtifacts(t *testing.T) {
	want := []string{
		"table2", "table3", "table4", "table5", "table6", "table7",
		"figure1", "figure2", "figure3", "figure4", "figure5", "figure6",
		"figure7", "figure8", "figure9", "figure10", "svm", "pruning",
		"tuning", "spectral", "hotloops", "profile", "snapshot", "index",
		"multivariate",
	}
	names := run.Default.Names()
	have := map[string]bool{}
	for _, e := range names {
		have[e] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing %s", w)
		}
	}
	if len(names) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(names), len(want))
	}
}

// TestExpandAll pins that "all" resolves through the registry to the full
// canonical order, so the command-line contract cannot drift from the
// registered drivers.
func TestExpandAll(t *testing.T) {
	names, err := run.Default.Expand([]string{"all"})
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != len(run.Default.Names()) {
		t.Errorf("Expand(all) returned %d names, want %d", len(names), len(run.Default.Names()))
	}
	if _, err := run.Default.Expand([]string{"table99"}); err == nil {
		t.Error("expected error expanding unknown experiment")
	}
}

// TestRunCancelledBeforeStart pins that an already-cancelled context stops
// an experiment before it does any work, returning context.Canceled.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := runExperiment(ctx, "table2", tinyOpts(), nil); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
