package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/run"
)

// -update-golden regenerates testdata/golden/*.golden from the current
// code. Run via `make golden` after an intentional output change and commit
// the diff; the test then pins every experiment's rendered output.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden experiment outputs")

// goldenArchive is the shared fixed-seed archive of the golden runs: small
// enough that all experiments finish quickly, large enough that every
// experiment exercises its full code path. Built once per test binary.
var goldenArchive = sync.OnceValue(func() []*dataset.Dataset {
	return dataset.GenerateArchive(dataset.ArchiveOptions{
		Seed: 1, Count: 8, MaxLength: 64, MaxTrain: 10, MaxTest: 12,
	})
})

func goldenOpts() experiments.Options {
	return experiments.Options{GridStride: 4, Archive: goldenArchive()}
}

// durationRE matches Go time.Duration strings ("1.234ms", "12.5µs", "0s",
// "1m2s") without touching plain decimal columns like accuracies.
var durationRE = regexp.MustCompile(`\b(\d+h)?(\d+m)?\d+(\.\d+)?(ns|µs|us|ms|s)\b`)

// ratioRE matches the pruning and tuning tables' speedup column, which sits
// between the two scrubbed duration columns and is as volatile as they are.
var ratioRE = regexp.MustCompile(`(<DUR> <DUR> )\d+(\.\d+)?`)

// warmPruneRE matches the tuning table's warm-prune-rate column, directly
// after the speedup: its counters come from racing per-worker cutoffs, so
// the value depends on scheduling and core count.
var warmPruneRE = regexp.MustCompile(`(<RATIO> )\d+(\.\d+)?`)

// scrub canonicalizes an experiment's rendered output: wall-clock values
// become <DUR> (collapsing the alignment padding around them), the pruning
// and tuning speedups become <RATIO>, the tuning warm-prune rate becomes
// <RATE>, and the figure9 body — sorted at runtime by measured inference
// time — is re-sorted lexicographically so the golden file does not depend
// on machine speed.
func scrub(name, out string) string {
	lines := strings.Split(out, "\n")
	for i, ln := range lines {
		if !durationRE.MatchString(ln) {
			continue
		}
		ln = durationRE.ReplaceAllString(ln, "<DUR>")
		// The fixed-width columns pad real durations of varying length, so
		// collapse runs of spaces on the lines we rewrote.
		ln = strings.Join(strings.Fields(ln), " ")
		ln = ratioRE.ReplaceAllString(ln, "${1}<RATIO>")
		if name == "tuning" {
			ln = warmPruneRE.ReplaceAllString(ln, "${1}<RATE>")
		}
		lines[i] = ln
	}
	if name == "figure9" && len(lines) > 2 {
		body := lines[2:]
		sort.Strings(body)
		// Sorting floats empty trailing lines to the front; rebuild without
		// them and re-append the final newline split artifact.
		trimmed := body[:0]
		for _, ln := range body {
			if ln != "" {
				trimmed = append(trimmed, ln)
			}
		}
		lines = append(lines[:2], trimmed...)
		lines = append(lines, "")
	}
	return strings.Join(lines, "\n")
}

// TestGoldenExperimentOutputs runs every registered tsbench experiment
// through the same dispatcher main uses, on a fixed-seed archive, and
// compares the scrubbed rendering against the committed golden file. Any
// unintentional change to a measure, an engine, or a renderer shows up as a
// readable text diff; intentional changes are recorded with -update-golden.
func TestGoldenExperimentOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden experiment sweep is slow in short mode")
	}
	opts := goldenOpts()
	for _, name := range run.Default.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := runExperiment(context.Background(), name, opts, nil)
			if err != nil {
				t.Fatalf("runExperiment(%s): %v", name, err)
			}
			got := scrub(name, res.Text)
			path := filepath.Join("testdata", "golden", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `make golden` to create it): %v", err)
			}
			if got != string(want) {
				t.Errorf("output differs from %s\n--- got ---\n%s\n--- want ---\n%s\n--- first divergence ---\n%s",
					path, got, want, firstDiff(got, string(want)))
			}
		})
	}
}

// TestGoldenScrubStability pins the scrubber itself: durations of varying
// widths and orderings must canonicalize identically, so golden files are
// machine-independent.
func TestGoldenScrubStability(t *testing.T) {
	a := "Pruning ablation: exhaustive matrix vs pruned 1-NN engine (DTW)\n" +
		"band   exact        pruned       speedup  acc\n" +
		"5      1.234ms      567µs        2.18     0.9583\n"
	b := "Pruning ablation: exhaustive matrix vs pruned 1-NN engine (DTW)\n" +
		"band   exact        pruned       speedup  acc\n" +
		"5      112.034ms    41ms         2.73     0.9583\n"
	if scrub("pruning", a) != scrub("pruning", b) {
		t.Errorf("scrub is machine-dependent:\n%q\n%q", scrub("pruning", a), scrub("pruning", b))
	}
	if s := scrub("pruning", a); strings.Contains(s, "1.234ms") || strings.Contains(s, "2.18") {
		t.Errorf("volatile values survived scrubbing: %q", s)
	}
	if s := scrub("pruning", a); !strings.Contains(s, "0.9583") {
		t.Errorf("deterministic accuracy was scrubbed away: %q", s)
	}

	c := "Tuning ablation: per-candidate loop vs shared-state grid engine\n" +
		"grid   cands  naive        engine       speedup  warmPrune  prepShare  repaired  agree\n" +
		"dtw    6      1.234s       541ms        2.28     0.61       0.00       0         true\n"
	d := "Tuning ablation: per-candidate loop vs shared-state grid engine\n" +
		"grid   cands  naive        engine       speedup  warmPrune  prepShare  repaired  agree\n" +
		"dtw    6      410ms        201ms        2.04     0.58       0.00       0         true\n"
	if scrub("tuning", c) != scrub("tuning", d) {
		t.Errorf("tuning scrub is machine-dependent:\n%q\n%q", scrub("tuning", c), scrub("tuning", d))
	}
	if s := scrub("tuning", c); strings.Contains(s, "2.28") || strings.Contains(s, "0.61") {
		t.Errorf("volatile tuning values survived scrubbing: %q", s)
	}
	if s := scrub("tuning", c); !strings.Contains(s, "0.00") || !strings.Contains(s, "true") {
		t.Errorf("deterministic tuning columns were scrubbed away: %q", s)
	}
}

// firstDiff renders the first differing line pair for quicker triage of a
// long golden mismatch.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) || i < len(w); i++ {
		var gl, wl string
		if i < len(g) {
			gl = g[i]
		}
		if i < len(w) {
			wl = w[i]
		}
		if gl != wl {
			return fmt.Sprintf("line %d:\n got: %q\nwant: %q", i+1, gl, wl)
		}
	}
	return "(no line-level difference)"
}
