package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// -smoke gates the end-to-end cancellation smoke test: it builds the real
// tsbench binary and runs it with a short -timeout, so it is too slow (and
// too build-environment-dependent) for the default test run. `make smoke`
// enables it.
var smoke = flag.Bool("smoke", false, "run the end-to-end tsbench cancellation smoke test")

// smokeCountRE scrubs the completed-experiment count: how many experiments
// finish inside the timeout depends on machine speed.
var smokeCountRE = regexp.MustCompile(`completed \d+/\d+ experiments`)

// scrubSmokeStderr canonicalizes the cancellation report: durations and the
// machine-dependent completed count become placeholders, and progress lines
// (if any) are dropped, leaving only the structural cancellation message.
func scrubSmokeStderr(s string) string {
	var kept []string
	for _, ln := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		if !strings.HasPrefix(ln, "tsbench: ") {
			continue
		}
		ln = durationRE.ReplaceAllString(ln, "<DUR>")
		ln = smokeCountRE.ReplaceAllString(ln, "completed <N>/<M> experiments")
		kept = append(kept, ln)
	}
	return strings.Join(kept, "\n") + "\n"
}

// TestSmokeCancellation builds tsbench and runs `-timeout 2s all`,
// asserting the graceful-cancellation contract end to end: exit status 3,
// a structural cancellation report on stderr, and a stdout that contains
// only fully-completed experiment tables (every printed experiment carries
// its completion trailer, and nothing is truncated mid-table).
func TestSmokeCancellation(t *testing.T) {
	if !*smoke {
		t.Skip("smoke test disabled; run via `make smoke` (go test -smoke)")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "tsbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-timeout", "2s", "all")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()

	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) {
		t.Fatalf("expected tsbench to exit non-zero under -timeout 2s, got err=%v\nstderr:\n%s", err, stderr.String())
	}
	if code := exitErr.ExitCode(); code != 3 {
		t.Errorf("exit code = %d, want 3\nstderr:\n%s", code, stderr.String())
	}

	got := scrubSmokeStderr(stderr.String())
	path := filepath.Join("testdata", "golden", "smoke.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	} else {
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden file (run `make smoke GOFLAGS=-update-golden` equivalent: go test ./cmd/tsbench -run TestSmokeCancellation -smoke -update-golden): %v", err)
		}
		if got != string(want) {
			t.Errorf("scrubbed stderr differs from %s\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
		}
	}

	// Every experiment printed to stdout must be complete: the number of
	// rendered tables equals the number of completion trailers, and the
	// output ends on a trailer boundary rather than mid-table.
	out := stdout.String()
	trailers := regexp.MustCompile(`(?m)^\[\w+ completed in [^\]]+\]$`).FindAllString(out, -1)
	if strings.TrimSpace(out) != "" && len(trailers) == 0 {
		t.Errorf("stdout has content but no completion trailers:\n%s", out)
	}
	if trimmed := strings.TrimRight(out, "\n"); trimmed != "" {
		lines := strings.Split(trimmed, "\n")
		last := lines[len(lines)-1]
		if !regexp.MustCompile(`^\[\w+ completed in [^\]]+\]$`).MatchString(last) {
			t.Errorf("stdout does not end on a completion trailer (partial table leaked):\n...%s", last)
		}
	}
}
