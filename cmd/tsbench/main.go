// Command tsbench regenerates the tables and figures of the paper's
// evaluation on the synthetic archive (or a real UCR archive directory).
//
// Usage:
//
//	tsbench [flags] [experiment ...]
//
// Experiments: table2 table3 table4 table5 table6 table7 figure1 figure2
// figure3 figure4 figure5 figure6 figure7 figure8 figure9 figure10 pruning
// tuning spectral, or "all". With no arguments, a summary of available
// experiments is printed.
//
// Flags:
//
//	-full          use the full 128-dataset archive configuration
//	-count N       number of synthetic datasets (default: reduced archive)
//	-seed N        archive seed (default 1)
//	-stride N      thin supervised parameter grids by N (default 1 = full)
//	-pruned        run 1-NN inference through the pruned search engine
//	-archive DIR   load real UCR datasets from DIR instead of synthesizing
//	-datasets CSV  comma-separated dataset names under -archive
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

var experimentOrder = []string{
	"table2", "figure2", "figure3", "table3", "figure4", "table4",
	"table5", "figure5", "figure6", "table6", "figure7", "figure8",
	"table7", "figure9", "figure10", "figure1", "svm", "pruning",
	"tuning", "spectral",
}

func main() {
	full := flag.Bool("full", false, "use the full 128-dataset archive configuration")
	count := flag.Int("count", 0, "number of synthetic datasets (0 = default)")
	seed := flag.Int64("seed", 1, "archive seed")
	stride := flag.Int("stride", 1, "thin supervised grids by this stride")
	pruned := flag.Bool("pruned", false, "run 1-NN inference through the pruned search engine")
	archiveDir := flag.String("archive", "", "directory with real UCR datasets")
	datasets := flag.String("datasets", "", "comma-separated dataset names under -archive")
	jsonPath := flag.String("json", "", "also write structured results as JSON to this file")
	flag.Parse()

	opts := experiments.Options{GridStride: *stride, Pruned: *pruned}
	switch {
	case *archiveDir != "":
		names := strings.Split(*datasets, ",")
		if *datasets == "" {
			fmt.Fprintln(os.Stderr, "tsbench: -archive requires -datasets")
			os.Exit(2)
		}
		for _, name := range names {
			d, err := dataset.LoadUCR(*archiveDir, strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
				os.Exit(1)
			}
			opts.Archive = append(opts.Archive, d.ZNormalizeAll())
		}
	case *full:
		opts.Archive = dataset.GenerateArchive(dataset.ArchiveOptions{Seed: *seed, Count: 128})
	case *count > 0:
		opts.Archive = dataset.GenerateArchive(dataset.ArchiveOptions{
			Seed: *seed, Count: *count, MaxLength: 96, MaxTrain: 18, MaxTest: 24,
		})
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("tsbench: regenerates the paper's tables and figures.")
		fmt.Println("Available experiments:")
		for _, e := range experimentOrder {
			fmt.Println("  " + e)
		}
		fmt.Println("  all")
		return
	}
	// Expand "all" wherever it appears, preserving the canonical order.
	var expanded []string
	for _, a := range args {
		if a == "all" {
			expanded = append(expanded, experimentOrder...)
		} else {
			expanded = append(expanded, a)
		}
	}
	args = expanded
	results := map[string]any{}
	for _, name := range args {
		start := time.Now()
		out, structured, err := run(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
			os.Exit(2)
		}
		results[strings.ToLower(name)] = structured
		fmt.Println(out)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: marshal results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[structured results written to %s]\n", *jsonPath)
	}
}

// run executes one experiment, returning its rendered text and the
// structured result for JSON export.
func run(name string, opts experiments.Options) (string, any, error) {
	switch strings.ToLower(name) {
	case "table2":
		t := experiments.Table2(opts)
		return t.Render(), t, nil
	case "table3":
		t := experiments.Table3(opts)
		return t.Render(), t, nil
	case "table4":
		s := experiments.Table4()
		return s, s, nil
	case "table5":
		t := experiments.Table5(opts)
		return t.Render(), t, nil
	case "table6":
		t := experiments.Table6(opts)
		return t.Render(), t, nil
	case "table7":
		t := experiments.Table7(opts)
		return t.Render(), t, nil
	case "figure1":
		s := experiments.Figure1()
		return s, s, nil
	case "figure2":
		r := experiments.Figure2(opts)
		return r.Render(), r, nil
	case "figure3":
		r := experiments.Figure3(opts)
		return r.Render(), r, nil
	case "figure4":
		r := experiments.Figure4(opts)
		return r.Render(), r, nil
	case "figure5":
		r := experiments.Figure5(opts)
		return r.Render(), r, nil
	case "figure6":
		r := experiments.Figure6(opts)
		return r.Render(), r, nil
	case "figure7":
		r := experiments.Figure7(opts)
		return r.Render(), r, nil
	case "figure8":
		r := experiments.Figure8(opts)
		return r.Render(), r, nil
	case "figure9":
		pts := experiments.Figure9(opts)
		return experiments.RenderRuntime(pts), pts, nil
	case "figure10":
		pts := experiments.Figure10(opts, 0, nil)
		return experiments.RenderConvergence(pts), pts, nil
	case "svm":
		rows := experiments.ExtensionSVM(opts)
		return experiments.RenderSVM(rows), rows, nil
	case "pruning":
		rows := experiments.PruningAblation(opts)
		return experiments.RenderPruning(rows), rows, nil
	case "tuning":
		rows := experiments.TuningAblation(opts)
		return experiments.RenderTuning(rows), rows, nil
	case "spectral":
		rows := experiments.SpectralRuntime(opts)
		return experiments.RenderSpectral(rows), rows, nil
	default:
		return "", nil, fmt.Errorf("unknown experiment %q", name)
	}
}
