// Command tsbench regenerates the tables and figures of the paper's
// evaluation on the synthetic archive (or a real UCR archive directory).
//
// Usage:
//
//	tsbench [flags] [experiment ...]
//
// Experiments are drawn from the run-core registry (internal/run), which
// every driver in internal/experiments self-registers into; run tsbench
// with no arguments to print the current list, or pass "all" to run every
// experiment in canonical order.
//
// Flags:
//
//	-full          use the full 128-dataset archive configuration
//	-count N       number of synthetic datasets (default: reduced archive)
//	-seed N        archive seed (default 1)
//	-stride N      thin supervised parameter grids by N (default 1 = full)
//	-pruned        run 1-NN inference through the pruned search engine
//	-archive DIR   load real UCR datasets from DIR instead of synthesizing
//	-datasets CSV  comma-separated dataset names under -archive
//	-json FILE     also write structured results as JSON to FILE
//	-timeout D     cancel the run after duration D (e.g. 90s, 10m)
//	-progress      print per-experiment progress events to stderr
//
// A run interrupted by SIGINT or -timeout stops cooperatively: the engines
// observe cancellation at dispatch-chunk granularity, tsbench prints every
// experiment that fully completed (and writes them to -json), reports the
// cancellation on stderr, and exits with status 3. Exit status is 0 on
// success, 1 on experiment or I/O errors, 2 on usage errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/run"
)

func main() {
	full := flag.Bool("full", false, "use the full 128-dataset archive configuration")
	count := flag.Int("count", 0, "number of synthetic datasets (0 = default)")
	seed := flag.Int64("seed", 1, "archive seed")
	stride := flag.Int("stride", 1, "thin supervised grids by this stride")
	pruned := flag.Bool("pruned", false, "run 1-NN inference through the pruned search engine")
	archiveDir := flag.String("archive", "", "directory with real UCR datasets")
	datasets := flag.String("datasets", "", "comma-separated dataset names under -archive")
	jsonPath := flag.String("json", "", "also write structured results as JSON to this file")
	timeout := flag.Duration("timeout", 0, "cancel the run after this duration (0 = no limit)")
	progress := flag.Bool("progress", false, "print progress events to stderr")
	flag.Parse()

	opts := experiments.Options{GridStride: *stride, Pruned: *pruned}
	switch {
	case *archiveDir != "":
		names := strings.Split(*datasets, ",")
		if *datasets == "" {
			fmt.Fprintln(os.Stderr, "tsbench: -archive requires -datasets")
			os.Exit(2)
		}
		for _, name := range names {
			d, err := dataset.LoadUCR(*archiveDir, strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
				os.Exit(1)
			}
			opts.Archive = append(opts.Archive, d.ZNormalizeAll())
		}
	case *full:
		opts.Archive = dataset.GenerateArchive(dataset.ArchiveOptions{Seed: *seed, Count: 128})
	case *count > 0:
		opts.Archive = dataset.GenerateArchive(dataset.ArchiveOptions{
			Seed: *seed, Count: *count, MaxLength: 96, MaxTrain: 18, MaxTest: 24,
		})
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("tsbench: regenerates the paper's tables and figures.")
		fmt.Println("Available experiments:")
		fmt.Print(run.Default.Usage())
		return
	}
	names, err := run.Default.Expand(args)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tsbench: %v\n", err)
		os.Exit(2)
	}

	// SIGINT cancels the context instead of killing the process, so a long
	// run interrupted at the terminal still prints its completed tables and
	// flushes -json before exiting. A second SIGINT kills immediately
	// (signal.NotifyContext restores the default handler after stop).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var rep run.Reporter
	if *progress {
		rep = run.NewProgressPrinter(os.Stderr)
	}

	results := map[string]any{}
	runStart := time.Now()
	completed := 0
	var cancelErr error
	for _, name := range names {
		start := time.Now()
		res, err := runExperiment(ctx, name, opts, rep)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				cancelErr = err
				break
			}
			fmt.Fprintf(os.Stderr, "tsbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		results[name] = res.Structured
		completed++
		fmt.Println(res.Text)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	if *jsonPath != "" && len(results) > 0 {
		data, err := json.MarshalIndent(results, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: marshal results: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "tsbench: write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("[structured results written to %s]\n", *jsonPath)
	}
	if cancelErr != nil {
		fmt.Fprintf(os.Stderr, "tsbench: run cancelled (%v): completed %d/%d experiments in %v\n",
			cancelErr, completed, len(names), time.Since(runStart).Round(time.Millisecond))
		os.Exit(3)
	}
}

// runExperiment resolves name in the default registry and executes its
// driver under ctx, reporting progress to rep (which may be nil).
func runExperiment(ctx context.Context, name string, opts experiments.Options, rep run.Reporter) (run.Result, error) {
	e, ok := run.Default.Lookup(name)
	if !ok {
		return run.Result{}, fmt.Errorf("unknown experiment %q", name)
	}
	return e.Run(ctx, opts, rep)
}
