package main

import (
	"strings"
	"testing"
)

func TestCompareJoinsAndFlags(t *testing.T) {
	old := []Record{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 200},
		{Name: "BenchmarkGone", NsPerOp: 50},
	}
	new := []Record{
		{Name: "BenchmarkA", NsPerOp: 104}, // +4%: inside the 5% budget
		{Name: "BenchmarkB", NsPerOp: 250}, // +25%: regression
		{Name: "BenchmarkFresh", NsPerOp: 10},
	}
	rows := Compare(old, new)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	if rows[0].Delta != 4 || rows[0].Missing != "" {
		t.Errorf("row A = %+v, want +4%% present", rows[0])
	}
	if rows[1].Delta != 25 {
		t.Errorf("row B delta = %v, want 25", rows[1].Delta)
	}
	if rows[2].Missing != "new" || rows[3].Missing != "old" {
		t.Errorf("missing flags wrong: %+v %+v", rows[2], rows[3])
	}

	reg := Regressions(rows, 5)
	if len(reg) != 1 || reg[0].Name != "BenchmarkB" {
		t.Fatalf("Regressions = %+v, want only BenchmarkB", reg)
	}
	// An improvement or a vanished benchmark must never fail the gate.
	if reg := Regressions(rows, 30); len(reg) != 0 {
		t.Errorf("Regressions(30%%) = %+v, want none", reg)
	}

	out := Render(rows, 5)
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("render lacks the REGRESSION flag:\n%s", out)
	}
	if !strings.Contains(out, "gone") || !strings.Contains(out, "new") {
		t.Errorf("render lacks the missing markers:\n%s", out)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	rows := Compare([]Record{{Name: "BenchmarkZ", NsPerOp: 0}}, []Record{{Name: "BenchmarkZ", NsPerOp: 10}})
	if rows[0].Delta != 0 {
		t.Errorf("zero baseline delta = %v, want 0 (undefined ratios never fail the gate)", rows[0].Delta)
	}
}
