// Command benchcompare diffs two benchjson files (see cmd/benchjson) in
// the style of benchstat: one line per benchmark with the old and new
// ns/op and the delta. It exits non-zero when any benchmark present in
// both files slowed down by more than -threshold percent, so it can gate
// CI on the committed BENCH_* baselines.
//
// Benchmarks present in only one file are reported but never fail the
// comparison — renames and additions are not regressions.
//
// Usage:
//
//	go test -bench Hotloops -benchmem ./internal/elastic | benchjson -o new.json
//	benchcompare -old BENCH_hotloops.json -new new.json -threshold 5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// Record mirrors cmd/benchjson's output schema.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Row is one comparison line. Delta is the relative ns/op change in
// percent (positive = slower); Missing marks benchmarks present in only
// one of the two files.
type Row struct {
	Name     string
	Old, New float64 // ns/op; 0 when Missing
	Delta    float64
	Missing  string // "" | "old" | "new"
}

// Compare joins the two record sets by name, preserving the old file's
// order and appending new-only benchmarks at the end.
func Compare(old, new []Record) []Row {
	newByName := map[string]Record{}
	for _, r := range new {
		newByName[r.Name] = r
	}
	seen := map[string]bool{}
	rows := make([]Row, 0, len(old)+len(new))
	for _, o := range old {
		seen[o.Name] = true
		n, ok := newByName[o.Name]
		if !ok {
			rows = append(rows, Row{Name: o.Name, Old: o.NsPerOp, Missing: "new"})
			continue
		}
		row := Row{Name: o.Name, Old: o.NsPerOp, New: n.NsPerOp}
		if o.NsPerOp > 0 {
			row.Delta = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		rows = append(rows, row)
	}
	for _, n := range new {
		if !seen[n.Name] {
			rows = append(rows, Row{Name: n.Name, New: n.NsPerOp, Missing: "old"})
		}
	}
	return rows
}

// Regressions returns the rows whose slowdown exceeds the threshold (in
// percent). Missing rows never count.
func Regressions(rows []Row, threshold float64) []Row {
	var out []Row
	for _, r := range rows {
		if r.Missing == "" && r.Delta > threshold {
			out = append(out, r)
		}
	}
	return out
}

// Render formats the comparison as an aligned table.
func Render(rows []Row, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-56s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, r := range rows {
		switch r.Missing {
		case "new":
			fmt.Fprintf(&b, "%-56s %14.0f %14s %9s\n", r.Name, r.Old, "-", "gone")
		case "old":
			fmt.Fprintf(&b, "%-56s %14s %14.0f %9s\n", r.Name, "-", r.New, "new")
		default:
			flag := ""
			if r.Delta > threshold {
				flag = "  REGRESSION"
			}
			fmt.Fprintf(&b, "%-56s %14.0f %14.0f %+8.2f%%%s\n", r.Name, r.Old, r.New, r.Delta, flag)
		}
	}
	return b.String()
}

func readRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline benchjson file")
	newPath := flag.String("new", "", "candidate benchjson file")
	threshold := flag.Float64("threshold", 5, "fail when ns/op grows by more than this percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchcompare: -old and -new are both required")
		os.Exit(2)
	}
	oldRecs, err := readRecords(*oldPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	newRecs, err := readRecords(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcompare: %v\n", err)
		os.Exit(2)
	}
	rows := Compare(oldRecs, newRecs)
	os.Stdout.WriteString(Render(rows, *threshold))
	if reg := Regressions(rows, *threshold); len(reg) > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d benchmark(s) regressed beyond %.1f%%\n", len(reg), *threshold)
		os.Exit(1)
	}
}
